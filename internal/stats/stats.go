// Package stats is the observability layer of the experiment engine:
// a concurrency-safe Recorder of named counters, phase timers and
// log2-bucketed value histograms that the compression pipeline
// (dictionary build, core phases, machine execution) reports into when a
// caller threads one through. All hooks are optional — every method is a
// no-op on a nil *Recorder — so the hot paths carry no cost unless a
// caller asks for instrumentation.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates counters, phase durations and value histograms.
// The zero value is not usable; call New. A nil *Recorder is a valid sink
// that discards everything.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	phases   map[string]Phase
	hists    map[string]*histAcc
}

// Phase is the accumulated timing of one named phase.
type Phase struct {
	Count int64 `json:"count"` // completed invocations
	Nanos int64 `json:"nanos"` // total duration in nanoseconds
}

// Duration returns the accumulated time.
func (p Phase) Duration() time.Duration { return time.Duration(p.Nanos) }

// New creates an empty recorder.
func New() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		phases:   map[string]Phase{},
		hists:    map[string]*histAcc{},
	}
}

// Add increments the named counter by n. Adding zero still materializes
// the counter key, which instrumented code uses deliberately: a counter
// that *can* stay at zero (e.g. dict.hash_collisions) is reported as 0
// rather than absent, so snapshots distinguish "nothing happened" from
// "not instrumented".
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Observe accumulates one completed invocation of the named phase.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.phases[name]
	p.Count++
	p.Nanos += int64(d)
	r.phases[name] = p
	r.mu.Unlock()
}

// Time starts a phase timer and returns the function that stops it:
//
//	defer r.Time("core.build")()
//
// The returned stop is safe to call on a timer from a nil recorder.
func (r *Recorder) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { r.Observe(name, time.Since(t0)) }
}

// ObserveValue folds one value into the named histogram. Distributions
// accumulate in log2 buckets, so the cost is a couple of integer
// operations regardless of the value range.
func (r *Recorder) ObserveValue(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histAcc{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Merge folds a snapshot into the recorder (engine totals aggregate
// per-experiment recorders this way).
func (r *Recorder) Merge(s Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range s.Counters {
		r.counters[k] += v
	}
	for k, v := range s.Phases {
		p := r.phases[k]
		p.Count += v.Count
		p.Nanos += v.Nanos
		r.phases[k] = p
	}
	for k, v := range s.Hists {
		h := r.hists[k]
		if h == nil {
			h = &histAcc{}
			r.hists[k] = h
		}
		h.merge(v)
	}
}

// Snapshot is a point-in-time copy of a recorder, safe to read and
// serialize while the recorder keeps accumulating.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Phases   map[string]Phase     `json:"phases,omitempty"`
	Hists    map[string]Histogram `json:"hists,omitempty"`
}

// Snapshot copies the current state. A nil recorder yields an empty
// snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Phases:   make(map[string]Phase, len(r.phases)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.phases {
		s.Phases[k] = v
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]Histogram, len(r.hists))
		for k, h := range r.hists {
			s.Hists[k] = h.snapshot()
		}
	}
	return s
}

// Counter returns one counter's value from the snapshot.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Phase returns one phase's accumulated timing.
func (s Snapshot) Phase(name string) Phase { return s.Phases[name] }

// Hist returns one histogram from the snapshot (zero value if absent).
func (s Snapshot) Hist(name string) Histogram { return s.Hists[name] }

// Summary renders the snapshot as sorted "name=value" fields — counters
// as "k=v", phases as "k=1.2ms/3", histograms as "k=n3/p50=8/p99=31" —
// for table footers and log lines. Fields sort lexicographically by their
// rendered text, so the order is deterministic for any snapshot.
func (s Snapshot) Summary() string {
	fields := make([]string, 0, len(s.Counters)+len(s.Phases)+len(s.Hists))
	for k, v := range s.Counters {
		fields = append(fields, fmt.Sprintf("%s=%d", k, v))
	}
	for k, v := range s.Phases {
		fields = append(fields, fmt.Sprintf("%s=%.1fms/%d", k, float64(v.Nanos)/1e6, v.Count))
	}
	for k, h := range s.Hists {
		fields = append(fields, fmt.Sprintf("%s=n%d/p50=%d/p99=%d", k, h.Count, h.P50, h.P99))
	}
	sort.Strings(fields)
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f)
	}
	return b.String()
}

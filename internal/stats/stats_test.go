package stats

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.Observe("p", time.Millisecond)
	r.Time("p")()
	r.Merge(Snapshot{Counters: map[string]int64{"x": 1}})
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Phases) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
}

func TestCountersAndPhases(t *testing.T) {
	r := New()
	r.Add("dict.pops", 3)
	r.Add("dict.pops", 2)
	r.Observe("core.build", 2*time.Millisecond)
	r.Observe("core.build", 3*time.Millisecond)
	s := r.Snapshot()
	if got := s.Counter("dict.pops"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	p := s.Phase("core.build")
	if p.Count != 2 || p.Duration() != 5*time.Millisecond {
		t.Errorf("phase = %+v", p)
	}
	// Snapshot is a copy: mutating the recorder afterwards must not change it.
	r.Add("dict.pops", 100)
	if s.Counter("dict.pops") != 5 {
		t.Error("snapshot aliases recorder state")
	}
}

func TestMergeAndSummary(t *testing.T) {
	a, b := New(), New()
	a.Add("n", 1)
	a.Observe("p", time.Millisecond)
	b.Add("n", 2)
	b.Observe("p", time.Millisecond)
	a.Merge(b.Snapshot())
	s := a.Snapshot()
	if s.Counter("n") != 3 || s.Phase("p").Count != 2 {
		t.Fatalf("merge: %+v", s)
	}
	sum := s.Summary()
	if !strings.Contains(sum, "n=3") || !strings.Contains(sum, "p=") {
		t.Errorf("summary %q", sum)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("c", 1)
				r.Observe("p", time.Microsecond)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counter("c"); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
}

// TestConcurrentEverything drives every recorder entry point — Add,
// Observe, ObserveValue, Merge and Snapshot — from many goroutines at
// once; run under -race it is the recorder's concurrency gate.
func TestConcurrentEverything(t *testing.T) {
	r := New()
	side := New()
	side.Add("merged", 1)
	side.ObserveValue("mh", 5)
	sideSnap := side.Snapshot()

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				switch (i + j) % 5 {
				case 0:
					r.Add("c", 1)
				case 1:
					r.Observe("p", time.Microsecond)
				case 2:
					r.ObserveValue("h", int64(j))
				case 3:
					r.Merge(sideSnap)
				case 4:
					_ = r.Snapshot().Summary()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	total := s.Counter("c") + s.Phase("p").Count + s.Hist("h").Count +
		s.Counter("merged")
	if total != workers*iters*4/5 {
		t.Errorf("operations accounted = %d, want %d", total, workers*iters*4/5)
	}
}

// TestSummaryFieldOrder pins Summary's exact rendering: fields sort
// lexicographically by their rendered text regardless of kind, so the
// output is byte-deterministic for any snapshot.
func TestSummaryFieldOrder(t *testing.T) {
	s := Snapshot{
		Counters: map[string]int64{"dict.entries": 12, "cache.hits": 90},
		Phases: map[string]Phase{
			"core.build": {Count: 3, Nanos: int64(4500 * time.Microsecond)},
		},
		Hists: map[string]Histogram{
			"dict.selection_bits": {Count: 2, P50: 64, P99: 128},
		},
	}
	const want = "cache.hits=90 core.build=4.5ms/3 dict.entries=12 dict.selection_bits=n2/p50=64/p99=128"
	if got := s.Summary(); got != want {
		t.Errorf("Summary() = %q\n            want %q", got, want)
	}
	// The order must be stable across repeated renderings (map iteration
	// order must never leak through).
	for i := 0; i < 20; i++ {
		if got := s.Summary(); got != want {
			t.Fatalf("iteration %d: %q", i, got)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Add("c", 7)
	r.Observe("p", time.Millisecond)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("c") != 7 || back.Phase("p").Nanos != int64(time.Millisecond) {
		t.Errorf("round trip: %+v", back)
	}
}

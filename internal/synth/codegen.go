package synth

import (
	"fmt"
	"math"

	"repro/internal/ppc"
	"repro/internal/program"
)

// Register discipline of the synthetic compiler. Everything is fixed and
// deterministic so that identical source shapes translate to identical
// instruction encodings — the redundancy source the paper exploits.
const (
	tempBase    = 3  // expression temporaries r3..r8, stack-allocated
	tempLimit   = 8  // deepest temporary
	addrReg     = 11 // address formation
	addrReg2    = 12 // jump-table scratch
	maxRegLoc   = 4  // register locals r31..r28 in non-leaf functions
	leafLocBase = 9  // leaf-function locals r9, r10
	maxLeafLoc  = 2
)

// globalInfo records where a global landed in the data section.
type globalInfo struct {
	addr uint32
	len  int
	elem int // element size in bytes: 1, 2 or 4
}

// Codegen translates IR modules through fixed SDTS templates into a
// program.Builder.
type Codegen struct {
	b       *program.Builder
	globals map[string]globalInfo

	// StandardizeSaves implements the paper's §5 proposal: every framed
	// function saves all four nonvolatile registers with a fixed 64-byte
	// frame, whether it needs them or not. The program grows, but every
	// prologue and epilogue becomes bit-identical and compresses to a
	// single codeword ("decrease code size at the expense of execution
	// time").
	StandardizeSaves bool

	// ScrambleAlloc is the converse of §5's register-allocation claim:
	// it deterministically randomizes each function's local-to-register
	// assignment and stack-slot layout, the way an unconstrained
	// allocator might. Semantics are unchanged, but identical source
	// shapes stop producing identical encodings and compression suffers.
	ScrambleAlloc bool

	scrambleState uint32
}

// scramble is a tiny deterministic xorshift stream for ScrambleAlloc.
func (cg *Codegen) scramble(n int) int {
	s := cg.scrambleState
	if s == 0 {
		s = 0x9E3779B9
	}
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	cg.scrambleState = s
	return int(s % uint32(n))
}

// standardFrame is the fixed frame size under StandardizeSaves. It covers
// the worst case the generator produces: 12 bytes of link area, up to 4
// stack locals and 4 saved registers.
const standardFrame = 64

// NewCodegen creates a code generator targeting a fresh module builder.
func NewCodegen(name string) *Codegen {
	return &Codegen{b: program.NewBuilder(name), globals: map[string]globalInfo{}}
}

// Builder exposes the underlying module builder (for libc emission and
// drivers).
func (cg *Codegen) Builder() *program.Builder { return cg.b }

// DeclareGlobals allocates data-section storage for every global.
func (cg *Codegen) DeclareGlobals(globals []*Global) error {
	for _, g := range globals {
		if g.Len < 1 || g.Len&(g.Len-1) != 0 {
			return fmt.Errorf("synth: global %s length %d not a power of two", g.Name, g.Len)
		}
		elem := g.Elem
		switch elem {
		case 0:
			elem = 4
		case 1, 2, 4:
		default:
			return fmt.Errorf("synth: global %s element size %d", g.Name, g.Elem)
		}
		if len(g.Init) > g.Len {
			return fmt.Errorf("synth: global %s has %d initializers for %d elements", g.Name, len(g.Init), g.Len)
		}
		data := make([]byte, elem*g.Len)
		for i, v := range g.Init {
			switch elem {
			case 1:
				data[i] = byte(v)
			case 2:
				data[2*i] = byte(uint16(v) >> 8)
				data[2*i+1] = byte(v)
			default:
				u := uint32(v)
				data[4*i] = byte(u >> 24)
				data[4*i+1] = byte(u >> 16)
				data[4*i+2] = byte(u >> 8)
				data[4*i+3] = byte(u)
			}
		}
		off := cg.b.AppendDataAligned(data, 4)
		cg.globals[g.Name] = globalInfo{addr: uint32(program.DefaultDataBase + off), len: g.Len, elem: elem}
	}
	return nil
}

// CompileModule declares globals and compiles every function.
func (cg *Codegen) CompileModule(m *Module) error {
	if err := cg.DeclareGlobals(m.Globals); err != nil {
		return err
	}
	for _, fn := range m.Funcs {
		if err := cg.CompileFunc(fn); err != nil {
			return fmt.Errorf("synth: %s: %w", fn.Name, err)
		}
	}
	return nil
}

// Link finalizes the module.
func (cg *Codegen) Link() (*program.Program, error) { return cg.b.Link() }

// fctx is the per-function compilation state.
type fctx struct {
	cg     *Codegen
	f      *program.FuncBuilder
	fn     *FuncDecl
	regLoc []uint8 // local → register, 0 when stack-resident
	off    []int32 // local → frame offset, valid when regLoc == 0
	frame  int32
	nsave  int
	labels int

	// crMap and aReg/aReg2 are identity under the canonical allocator;
	// ScrambleAlloc permutes them per function.
	crMap [8]uint8
	aReg  uint8
	aReg2 uint8
}

// initAlloc sets up the (possibly scrambled) allocation maps.
func (c *fctx) initAlloc() {
	for i := range c.crMap {
		c.crMap[i] = uint8(i)
	}
	c.aReg, c.aReg2 = addrReg, addrReg2
	if !c.cg.ScrambleAlloc {
		return
	}
	// Permute the condition fields the templates actually use.
	used := []uint8{0, 1, 7}
	for i := len(used) - 1; i > 0; i-- {
		j := c.cg.scramble(i + 1)
		used[i], used[j] = used[j], used[i]
	}
	c.crMap[0], c.crMap[1], c.crMap[7] = used[0], used[1], used[2]
	if c.cg.scramble(2) == 1 {
		c.aReg, c.aReg2 = addrReg2, addrReg
	}
}

func (c *fctx) cr(f uint8) uint8 { return c.crMap[f&7] }

func (c *fctx) newLabel() string {
	c.labels++
	return fmt.Sprintf(".L%d", c.labels)
}

// CompileFunc translates one function.
func (cg *Codegen) CompileFunc(fn *FuncDecl) error {
	c := &fctx{cg: cg, f: cg.b.Func(fn.Name), fn: fn}
	if fn.Leaf {
		return c.compileLeaf()
	}
	return c.compileFramed()
}

func (c *fctx) compileLeaf() error {
	c.initAlloc()
	fn := c.fn
	if fn.NLocals > maxLeafLoc || fn.NParams > fn.NLocals {
		return fmt.Errorf("leaf function with %d locals / %d params", fn.NLocals, fn.NParams)
	}
	c.regLoc = make([]uint8, fn.NLocals)
	c.off = make([]int32, fn.NLocals)
	for i := 0; i < fn.NLocals; i++ {
		c.regLoc[i] = uint8(leafLocBase + i)
	}
	// Parameter copy: the template always moves arguments into their home
	// registers, even when a smarter allocator could avoid it.
	for i := 0; i < fn.NParams; i++ {
		c.f.Emit(ppc.Mr(c.regLoc[i], uint8(tempBase+i)))
	}
	c.zeroLocals(fn)
	for _, s := range fn.Body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	c.f.Emit(ppc.Li(tempBase, 0)) // implicit return value
	c.f.Label(".ret")
	c.f.BeginEpilogue()
	c.f.Emit(ppc.Blr())
	c.f.EndEpilogue()
	return nil
}

func (c *fctx) compileFramed() error {
	c.initAlloc()
	fn := c.fn
	if fn.NParams > fn.NLocals {
		return fmt.Errorf("%d params exceed %d locals", fn.NParams, fn.NLocals)
	}
	if fn.NParams > 5 {
		return fmt.Errorf("too many parameters (%d)", fn.NParams)
	}
	nreg := fn.NLocals
	if nreg > maxRegLoc {
		nreg = maxRegLoc
	}
	c.nsave = nreg
	if c.cg.StandardizeSaves {
		c.nsave = maxRegLoc
	}
	c.regLoc = make([]uint8, fn.NLocals)
	c.off = make([]int32, fn.NLocals)
	nstack := 0
	if c.cg.ScrambleAlloc {
		// Unconstrained-allocator model: locals land in the nonvolatile
		// registers in a per-function order, and stack slots are assigned
		// with per-function gaps.
		order := make([]int, fn.NLocals)
		for i := range order {
			order[i] = i
		}
		for i := len(order) - 1; i > 0; i-- {
			j := c.cg.scramble(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		reg := 0
		slot := 0
		for _, idx := range order {
			if reg < nreg {
				c.regLoc[idx] = uint8(31 - reg)
				reg++
				continue
			}
			slot += c.cg.scramble(2) // occasional one-slot gap
			c.off[idx] = int32(12 + 4*slot)
			slot++
			nstack = slot
		}
	} else {
		for i := 0; i < fn.NLocals; i++ {
			if i < nreg {
				c.regLoc[i] = uint8(31 - i)
			} else {
				c.off[i] = int32(12 + 4*nstack)
				nstack++
			}
		}
	}
	// Frame: [0..3] back chain, [4..7] pad, [8..11] LR-save slot written
	// by callees (each callee stores LR at 8(its caller's SP) before
	// stwu), locals from 12, saved nonvolatiles at the top.
	frame := int32(12 + 4*nstack + 4*c.nsave)
	frame = (frame + 15) &^ 15
	if c.cg.StandardizeSaves {
		if frame > standardFrame {
			return fmt.Errorf("frame %d exceeds the standardized %d bytes", frame, standardFrame)
		}
		frame = standardFrame
	}
	c.frame = frame

	// The templates save and restore nonvolatiles one register at a time,
	// the way GCC -O2 schedules them; the resulting repeated stw/lwz runs
	// are a prime compression target (§5's prologue observation).
	c.f.BeginPrologue()
	c.f.Emit(ppc.Mflr(0))
	c.f.Emit(ppc.Stw(0, 8, 1))
	c.f.Emit(ppc.Stwu(1, -frame, 1))
	for i := 0; i < c.nsave; i++ {
		c.f.Emit(ppc.Stw(uint8(31-i), frame-int32(4+4*i), 1))
	}
	c.f.EndPrologue()

	// Parameter copy into locals.
	for i := 0; i < fn.NParams; i++ {
		src := uint8(tempBase + i)
		if r := c.regLoc[i]; r != 0 {
			c.f.Emit(ppc.Mr(r, src))
		} else {
			c.f.Emit(ppc.Stw(src, c.off[i], 1))
		}
	}

	// Zero-initialize the remaining locals. Beyond matching C semantics
	// for the generated programs, this keeps execution independent of
	// stale register and stack contents — essential for comparing the
	// normal and compressed machines instruction for instruction.
	c.zeroLocals(fn)

	// Depth guard: local 0 is the depth budget; non-positive budgets
	// return a constant immediately. This bounds all dynamic call trees.
	if fn.NParams > 0 {
		body := c.newLabel()
		c.loadLocal(tempBase, 0)
		c.f.Emit(ppc.Cmpwi(c.cr(1), tempBase, 0))
		c.f.Branch(ppc.Bgt(c.cr(1), 0), body)
		c.f.Emit(ppc.Li(tempBase, 1))
		c.f.Branch(ppc.B(0), ".ret")
		c.f.Label(body)
	}

	for _, s := range fn.Body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	c.f.Emit(ppc.Li(tempBase, 0))
	c.f.Label(".ret")
	c.f.BeginEpilogue()
	for i := c.nsave - 1; i >= 0; i-- {
		c.f.Emit(ppc.Lwz(uint8(31-i), frame-int32(4+4*i), 1))
	}
	c.f.Emit(ppc.Addi(1, 1, frame))
	c.f.Emit(ppc.Lwz(0, 8, 1))
	c.f.Emit(ppc.Mtlr(0))
	c.f.Emit(ppc.Blr())
	c.f.EndEpilogue()
	return nil
}

// zeroLocals initializes every non-parameter local to zero.
func (c *fctx) zeroLocals(fn *FuncDecl) {
	if fn.NParams >= fn.NLocals {
		return
	}
	c.f.Emit(ppc.Li(tempBase, 0))
	for i := fn.NParams; i < fn.NLocals; i++ {
		c.storeLocal(i, tempBase)
	}
}

// loadLocal materializes a local into reg.
func (c *fctx) loadLocal(reg uint8, idx int) {
	if r := c.regLoc[idx]; r != 0 {
		if r != reg {
			c.f.Emit(ppc.Mr(reg, r))
		}
		return
	}
	c.f.Emit(ppc.Lwz(reg, c.off[idx], 1))
}

// storeLocal writes reg into a local.
func (c *fctx) storeLocal(idx int, reg uint8) {
	if r := c.regLoc[idx]; r != 0 {
		if r != reg {
			c.f.Emit(ppc.Mr(r, reg))
		}
		return
	}
	c.f.Emit(ppc.Stw(reg, c.off[idx], 1))
}

// ha/lo split an address for the lis+d(reg) addressing template.
func haLo(addr uint32) (int32, int32) {
	lo := int32(int16(uint16(addr)))
	ha := int32(int16(uint16((addr - uint32(lo)) >> 16)))
	return ha, lo
}

func (c *fctx) global(name string) (globalInfo, error) {
	gi, ok := c.cg.globals[name]
	if !ok {
		return gi, fmt.Errorf("undefined global %q", name)
	}
	return gi, nil
}

// eval translates an expression into dst, using dst+1.. as temporaries —
// the fixed Sethi–Ullman-style stack discipline.
func (c *fctx) eval(e Expr, dst uint8) error {
	if dst > tempLimit {
		return fmt.Errorf("expression too deep (temp r%d)", dst)
	}
	switch x := e.(type) {
	case Const:
		if x.Val >= math.MinInt16 && x.Val <= math.MaxInt16 {
			c.f.Emit(ppc.Li(dst, x.Val))
		} else {
			c.f.Emit(ppc.Lis(dst, int32(int16(uint16(uint32(x.Val)>>16)))))
			c.f.Emit(ppc.Ori(dst, dst, int32(uint32(x.Val)&0xFFFF)))
		}
	case Local:
		c.loadLocal(dst, x.Idx)
	case GlobalRef:
		gi, err := c.global(x.Name)
		if err != nil {
			return err
		}
		ha, lo := haLo(gi.addr)
		c.f.Emit(ppc.Lis(c.aReg, ha))
		c.f.Emit(ppc.Lwz(dst, lo, c.aReg))
	case ArrayRef:
		gi, err := c.global(x.Name)
		if err != nil {
			return err
		}
		if err := c.eval(x.Idx, dst); err != nil {
			return err
		}
		c.maskIndex(dst, gi.len)
		c.scaleIndex(dst, gi.elem)
		ha, lo := haLo(gi.addr)
		c.f.Emit(ppc.Lis(c.aReg, ha))
		c.f.Emit(ppc.Addi(c.aReg, c.aReg, lo))
		switch gi.elem {
		case 1:
			c.f.Emit(ppc.Lbzx(dst, c.aReg, dst))
		case 2:
			c.f.Emit(ppc.Lhzx(dst, c.aReg, dst))
		default:
			c.f.Emit(ppc.Lwzx(dst, c.aReg, dst))
		}
	case UnOp:
		if err := c.eval(x.X, dst); err != nil {
			return err
		}
		switch x.Op {
		case "neg":
			c.f.Emit(ppc.Neg(dst, dst))
		case "not":
			c.f.Emit(ppc.Nor(dst, dst, dst))
		default:
			return fmt.Errorf("unknown unary op %q", x.Op)
		}
	case BinOp:
		if err := c.eval(x.L, dst); err != nil {
			return err
		}
		if err := c.eval(x.R, dst+1); err != nil {
			return err
		}
		switch x.Op {
		case "+":
			c.f.Emit(ppc.Add(dst, dst, dst+1))
		case "-":
			c.f.Emit(ppc.Subf(dst, dst+1, dst))
		case "*":
			c.f.Emit(ppc.Mullw(dst, dst, dst+1))
		case "/":
			c.f.Emit(ppc.Divw(dst, dst, dst+1))
		case "&":
			c.f.Emit(ppc.And(dst, dst, dst+1))
		case "|":
			c.f.Emit(ppc.Or(dst, dst, dst+1))
		case "^":
			c.f.Emit(ppc.Xor(dst, dst, dst+1))
		default:
			return fmt.Errorf("unknown binary op %q", x.Op)
		}
	case BinImm:
		if err := c.eval(x.L, dst); err != nil {
			return err
		}
		switch x.Op {
		case "+":
			c.f.Emit(ppc.Addi(dst, dst, x.Imm))
		case "&":
			c.f.Emit(ppc.AndiRc(dst, dst, x.Imm))
		case "|":
			c.f.Emit(ppc.Ori(dst, dst, x.Imm))
		case "^":
			c.f.Emit(ppc.Xori(dst, dst, x.Imm))
		case "<<":
			c.f.Emit(ppc.Slwi(dst, dst, uint8(x.Imm&31)))
		case ">>":
			c.f.Emit(ppc.Srawi(dst, dst, uint8(x.Imm&31)))
		case "mask":
			c.f.Emit(ppc.Clrlwi(dst, dst, uint8(x.Imm&31)))
		default:
			return fmt.Errorf("unknown immediate op %q", x.Op)
		}
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
	return nil
}

// scaleIndex converts an element index to a byte offset.
func (c *fctx) scaleIndex(reg uint8, elem int) {
	switch elem {
	case 2:
		c.f.Emit(ppc.Slwi(reg, reg, 1))
	case 4, 0:
		c.f.Emit(ppc.Slwi(reg, reg, 2))
	}
}

// maskIndex clamps an array index to [0, len) via clrlwi, relying on
// power-of-two lengths.
func (c *fctx) maskIndex(reg uint8, length int) {
	bits := 0
	for 1<<bits < length {
		bits++
	}
	if bits >= 32 {
		return
	}
	c.f.Emit(ppc.Clrlwi(reg, reg, uint8(32-bits)))
}

// condBranch emits the compare for cond and a branch to label taken when
// the condition evaluates to `when`.
func (c *fctx) condBranch(cond Cond, when bool, label string) error {
	if err := c.eval(cond.L, tempBase); err != nil {
		return err
	}
	crf := c.cr(cond.CRF)
	if cond.R != nil {
		if err := c.eval(cond.R, tempBase+1); err != nil {
			return err
		}
		if cond.Unsigned {
			c.f.Emit(ppc.Cmplw(crf, tempBase, tempBase+1))
		} else {
			c.f.Emit(ppc.Cmpw(crf, tempBase, tempBase+1))
		}
	} else {
		if cond.Unsigned {
			c.f.Emit(ppc.Cmplwi(crf, tempBase, cond.Imm))
		} else {
			c.f.Emit(ppc.Cmpwi(crf, tempBase, cond.Imm))
		}
	}
	rel := cond.Rel
	if !when {
		rel = negateRel(rel)
	}
	var w uint32
	switch rel {
	case "==":
		w = ppc.Beq(crf, 0)
	case "!=":
		w = ppc.Bne(crf, 0)
	case "<":
		w = ppc.Blt(crf, 0)
	case "<=":
		w = ppc.Ble(crf, 0)
	case ">":
		w = ppc.Bgt(crf, 0)
	case ">=":
		w = ppc.Bge(crf, 0)
	default:
		return fmt.Errorf("unknown relation %q", rel)
	}
	c.f.Branch(w, label)
	return nil
}

func negateRel(rel string) string {
	switch rel {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return rel
}

// store writes r3 (the canonical result register) to an lvalue.
func (c *fctx) store(dst LValue) error {
	switch d := dst.(type) {
	case LLocal:
		c.storeLocal(d.Idx, tempBase)
	case LGlobal:
		gi, err := c.global(d.Name)
		if err != nil {
			return err
		}
		ha, lo := haLo(gi.addr)
		c.f.Emit(ppc.Lis(c.aReg, ha))
		c.f.Emit(ppc.Stw(tempBase, lo, c.aReg))
	case LArray:
		gi, err := c.global(d.Name)
		if err != nil {
			return err
		}
		if err := c.eval(d.Idx, tempBase+1); err != nil {
			return err
		}
		c.maskIndex(tempBase+1, gi.len)
		c.scaleIndex(tempBase+1, gi.elem)
		ha, lo := haLo(gi.addr)
		c.f.Emit(ppc.Lis(c.aReg, ha))
		c.f.Emit(ppc.Addi(c.aReg, c.aReg, lo))
		switch gi.elem {
		case 1:
			c.f.Emit(ppc.Stbx(tempBase, c.aReg, tempBase+1))
		case 2:
			c.f.Emit(ppc.Sthx(tempBase, c.aReg, tempBase+1))
		default:
			c.f.Emit(ppc.Stwx(tempBase, c.aReg, tempBase+1))
		}
	default:
		return fmt.Errorf("unknown lvalue %T", dst)
	}
	return nil
}

func (c *fctx) stmt(s Stmt) error {
	switch st := s.(type) {
	case Assign:
		if err := c.eval(st.Src, tempBase); err != nil {
			return err
		}
		return c.store(st.Dst)

	case AssignCall:
		if c.fn.Leaf {
			return fmt.Errorf("call in leaf function")
		}
		argBase := tempBase
		if !st.Libc {
			// Generated callees take the decremented depth first.
			c.loadLocal(tempBase, 0)
			c.f.Emit(ppc.Addi(tempBase, tempBase, -1))
			argBase = tempBase + 1
		}
		for i, a := range st.Args {
			if err := c.eval(a, uint8(argBase+i)); err != nil {
				return err
			}
		}
		c.f.Call(st.Callee)
		return c.store(st.Dst)

	case If:
		elseL := c.newLabel()
		if err := c.condBranch(st.Cond, false, elseL); err != nil {
			return err
		}
		for _, t := range st.Then {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		if len(st.Else) == 0 {
			c.f.Label(elseL)
			return nil
		}
		endL := c.newLabel()
		c.f.Branch(ppc.B(0), endL)
		c.f.Label(elseL)
		for _, t := range st.Else {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		c.f.Label(endL)

	case Loop:
		if st.Step <= 0 {
			return fmt.Errorf("non-positive loop step")
		}
		top, check := c.newLabel(), c.newLabel()
		c.f.Emit(ppc.Li(tempBase, st.From))
		c.storeLocal(st.Var, tempBase)
		c.f.Branch(ppc.B(0), check)
		c.f.Label(top)
		for _, t := range st.Body {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		c.loadLocal(tempBase, st.Var)
		c.f.Emit(ppc.Addi(tempBase, tempBase, st.Step))
		c.storeLocal(st.Var, tempBase)
		c.f.Label(check)
		c.loadLocal(tempBase, st.Var)
		c.f.Emit(ppc.Cmpwi(c.cr(0), tempBase, st.To))
		c.f.Branch(ppc.Blt(c.cr(0), 0), top)

	case Switch:
		if len(st.Cases) < 2 {
			return fmt.Errorf("switch with %d cases", len(st.Cases))
		}
		defL, endL := c.newLabel(), c.newLabel()
		caseLs := make([]string, len(st.Cases))
		for i := range st.Cases {
			caseLs[i] = c.newLabel()
		}
		c.loadLocal(tempBase, st.Var)
		c.f.Emit(ppc.Cmplwi(c.cr(0), tempBase, int32(len(st.Cases)-1)))
		c.f.Branch(ppc.Bgt(c.cr(0), 0), defL)
		c.f.JumpTable(tempBase, c.aReg, c.aReg2, caseLs)
		for i, body := range st.Cases {
			c.f.Label(caseLs[i])
			for _, t := range body {
				if err := c.stmt(t); err != nil {
					return err
				}
			}
			c.f.Branch(ppc.B(0), endL)
		}
		c.f.Label(defL)
		for _, t := range st.Default {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		c.f.Label(endL)

	case Return:
		if err := c.eval(st.Val, tempBase); err != nil {
			return err
		}
		c.f.Branch(ppc.B(0), ".ret")

	case PutInt:
		if err := c.eval(st.Val, tempBase); err != nil {
			return err
		}
		c.f.Emit(ppc.Li(0, 2)) // machine.SysPutint
		c.f.Emit(ppc.Sc())

	default:
		return fmt.Errorf("unknown statement %T", s)
	}
	return nil
}

// EmitMain generates the driver: it invokes each root with the given depth
// budget, accumulates results, prints the checksum and exits. The checksum
// makes original-vs-compressed execution comparable byte for byte.
func (cg *Codegen) EmitMain(roots []string, depth int32) {
	f := cg.b.Func("main")
	f.BeginPrologue()
	f.Emit(ppc.Mflr(0))
	f.Emit(ppc.Stw(0, 8, 1))
	f.Emit(ppc.Stwu(1, -32, 1))
	f.Emit(ppc.Stmw(30, 24, 1))
	f.EndPrologue()
	f.Emit(ppc.Li(30, 0)) // checksum
	for _, r := range roots {
		f.Emit(ppc.Li(3, depth))
		f.Call(r)
		f.Emit(ppc.Add(30, 30, 3))
	}
	f.Emit(ppc.Mr(3, 30))
	f.Emit(ppc.Li(0, 2)) // putint
	f.Emit(ppc.Sc())
	f.Emit(ppc.Li(3, 10))
	f.Emit(ppc.Li(0, 1)) // putchar '\n'
	f.Emit(ppc.Sc())
	f.Emit(ppc.Li(3, 0))
	f.Emit(ppc.Li(0, 0)) // exit
	f.Emit(ppc.Sc())
	cg.b.SetEntry("main")
}

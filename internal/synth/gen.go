package synth

import (
	"fmt"
	"math/rand"
)

// Profile controls the shape of one synthetic benchmark. The eight SPEC
// CINT95 stand-ins differ in size and statement mix; everything is
// generated deterministically from the seed.
type Profile struct {
	Name string
	Seed int64

	// TargetWords is the approximate text size in instruction words,
	// excluding libc.
	TargetWords int

	// StmtsMin/StmtsMax bound the top-level statement count per function.
	StmtsMin, StmtsMax int

	// ExprDepth bounds expression-tree depth.
	ExprDepth int

	// LeafFrac is the fraction of leaf (frameless) functions.
	LeafFrac float64

	// Statement weights (relative).
	WAssign, WIf, WLoop, WSwitch, WCall, WArray int

	// MaxLocals bounds per-function locals (first ones land in r31..r28).
	MaxLocals int

	// Globals.
	NScalars, NArrays int
	ArrayLenPow       int // array lengths are 2..2^ArrayLenPow

	// ImmRange bounds the magnitude of random immediates.
	ImmRange int32

	// CallWindow is how far ahead a function may call (DAG edge span).
	CallWindow int

	// LibcFrac is the probability that a call targets libc instead of a
	// generated function.
	LibcFrac float64

	// SwitchMin/SwitchMax bound jump-table case counts.
	SwitchMin, SwitchMax int

	// MainRoots and MainDepth shape the driver.
	MainRoots int
	MainDepth int32

	// MegaFuncs is the number of huge straight-line functions (the
	// gcc-style interpreter/codegen monsters). Their long if-blocks give
	// conditional branches large displacements, producing Table 1's
	// offset-overflow tails and exercising the far-branch stub path.
	MegaFuncs int

	// MegaSpan bounds the statement count of a mega function's big
	// if-blocks.
	MegaSpan [2]int

	// StandardizeSaves switches the code generator to the paper's §5
	// compiler-cooperation mode: identical full-save prologues and
	// epilogues everywhere (bigger program, better compression).
	StandardizeSaves bool

	// ScrambleAlloc randomizes per-function register/stack allocation —
	// the anti-§5 compiler. Same semantics, worse compression.
	ScrambleAlloc bool
}

// gen carries generation state.
type gen struct {
	p       Profile
	rng     *rand.Rand
	nfuncs  int
	scalars []string
	arrays  []string

	// locked marks locals serving as induction variables of enclosing
	// loops; assigning to them could produce non-terminating loops.
	locked map[int]bool
}

// freeLocal picks a local that is not an active induction variable (nor
// the depth budget). It returns -1 when every local is locked; callers
// must then write somewhere else.
func (g *gen) freeLocal(nlocals int) int {
	for try := 0; try < 8; try++ {
		idx := g.rng.Intn(nlocals)
		if !g.locked[idx] {
			return idx
		}
	}
	for idx := nlocals - 1; idx >= 0; idx-- {
		if !g.locked[idx] {
			return idx
		}
	}
	return -1
}

// estWordsPerFunc is the calibration constant converting the target word
// count into a function count; validated by TestGeneratedSizes.
const estWordsPerFunc = 72

// GenerateModule produces the IR module for a profile, estimating the
// function count from the size target. GenerateModuleN overrides the
// count (the size-calibration second pass).
func GenerateModule(p Profile) (*Module, error) {
	n := p.TargetWords / estWordsPerFunc
	return GenerateModuleN(p, n)
}

// GenerateModuleN produces the IR module with an explicit function count.
func GenerateModuleN(p Profile, nfuncs int) (*Module, error) {
	if p.StmtsMin < 1 || p.StmtsMax < p.StmtsMin {
		return nil, fmt.Errorf("synth: bad statement bounds in profile %s", p.Name)
	}
	g := &gen{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
	}
	g.nfuncs = nfuncs
	if g.nfuncs < 3 {
		g.nfuncs = 3
	}

	m := &Module{Name: p.Name}
	for i := 0; i < p.NScalars; i++ {
		name := fmt.Sprintf("g%02d", i)
		g.scalars = append(g.scalars, name)
		m.Globals = append(m.Globals, &Global{Name: name, Len: 1})
	}
	for i := 0; i < p.NArrays; i++ {
		name := fmt.Sprintf("a%02d", i)
		length := 1 << (1 + g.rng.Intn(p.ArrayLenPow))
		// Mostly word arrays, with a tail of byte and halfword tables
		// (character classes, lookup tables — the lbz/stb traffic the
		// paper's example code shows).
		elem := []int{4, 4, 4, 4, 1, 1, 2}[g.rng.Intn(7)]
		gl := &Global{Name: name, Len: length, Elem: elem}
		// A third of the arrays are constant lookup tables with
		// pre-initialized contents (character classes, coefficients, …).
		if g.rng.Intn(3) == 0 {
			gl.Init = make([]int32, length)
			for j := range gl.Init {
				gl.Init[j] = g.immVal()
			}
		}
		g.arrays = append(g.arrays, name)
		m.Globals = append(m.Globals, gl)
	}
	for i := 0; i < g.nfuncs; i++ {
		m.Funcs = append(m.Funcs, g.genFunc(i))
	}
	return m, nil
}

func funcName(i int) string { return fmt.Sprintf("f%03d", i) }

func (g *gen) genFunc(idx int) *FuncDecl {
	g.locked = map[int]bool{}
	if idx < g.p.MegaFuncs {
		return g.genMega(idx)
	}
	if g.rng.Float64() < g.p.LeafFrac {
		return g.genLeaf(idx)
	}
	return g.genFramed(idx)
}

// genMega produces a huge function dominated by long straight-line
// if-blocks. The blocks execute at most once per invocation (no loops or
// calls inside), so they are size-heavy but execution-cheap.
func (g *gen) genMega(idx int) *FuncDecl {
	g.locked[0] = true
	nlocals := g.p.MaxLocals
	if nlocals < 3 {
		nlocals = 3
	}
	f := &FuncDecl{Name: funcName(idx), NParams: 2, NLocals: nlocals}
	span := func() int {
		lo, hi := g.p.MegaSpan[0], g.p.MegaSpan[1]
		if hi <= lo {
			return lo
		}
		return lo + g.rng.Intn(hi-lo)
	}
	straight := func(n int) []Stmt {
		out := make([]Stmt, 0, n)
		for i := 0; i < n; i++ {
			if i > 0 && i%40 == 0 {
				// A medium nested block populates the middle of the
				// displacement distribution.
				inner := If{Cond: g.genCond(nlocals, true)}
				for j := 0; j < 16; j++ {
					inner.Then = append(inner.Then, Assign{
						Dst: g.genLValue(nlocals, j%3 == 0),
						Src: g.genExpr(2, nlocals, true),
					})
				}
				out = append(out, inner)
				continue
			}
			out = append(out, Assign{
				Dst: g.genLValue(nlocals, i%4 == 0),
				Src: g.genExpr(2, nlocals, true),
			})
		}
		return out
	}
	nBig := 2 + g.rng.Intn(2)
	for b := 0; b < nBig; b++ {
		f.Body = append(f.Body,
			Assign{Dst: g.genLValue(nlocals, false), Src: g.genExpr(2, nlocals, true)},
			If{Cond: g.genCond(nlocals, false), Then: straight(span())},
		)
	}
	f.Body = append(f.Body, Return{Val: g.genExpr(2, nlocals, true)})
	return f
}

// genLeaf produces a small frameless utility function.
func (g *gen) genLeaf(idx int) *FuncDecl {
	nparams := 1 + g.rng.Intn(2)
	nlocals := nparams
	f := &FuncDecl{Name: funcName(idx), NParams: nparams, NLocals: nlocals, Leaf: true}
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, Assign{
			Dst: LLocal{Idx: g.rng.Intn(nlocals)},
			Src: g.genExpr(2, nlocals, false),
		})
	}
	if g.rng.Intn(2) == 0 {
		f.Body = append(f.Body, If{
			Cond: g.genCond(nlocals, false),
			Then: []Stmt{Assign{Dst: LLocal{Idx: g.rng.Intn(nlocals)}, Src: g.genExpr(1, nlocals, false)}},
		})
	}
	f.Body = append(f.Body, Return{Val: g.genExpr(2, nlocals, false)})
	return f
}

// genFramed produces a standard function with prologue, depth guard and a
// mixed statement body.
func (g *gen) genFramed(idx int) *FuncDecl {
	// Local 0 is the depth budget; writing to it would unbound the call
	// tree, so it stays locked for the whole function.
	g.locked[0] = true
	nparams := 1 + g.rng.Intn(3) // depth + up to 2 user args
	nlocals := nparams + g.rng.Intn(g.p.MaxLocals-nparams+1)
	if nlocals < 2 {
		nlocals = 2
	}
	f := &FuncDecl{Name: funcName(idx), NParams: nparams, NLocals: nlocals}
	n := g.p.StmtsMin + g.rng.Intn(g.p.StmtsMax-g.p.StmtsMin+1)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, g.genStmt(idx, nlocals, 0))
	}
	f.Body = append(f.Body, Return{Val: g.genExpr(g.p.ExprDepth, nlocals, true)})
	return f
}

// genStmt picks a statement by profile weight. nest limits structural
// nesting so loops and switches stay shallow and execution stays bounded.
func (g *gen) genStmt(fidx, nlocals, nest int) Stmt {
	total := g.p.WAssign + g.p.WIf + g.p.WLoop + g.p.WSwitch + g.p.WCall + g.p.WArray
	pick := g.rng.Intn(total)
	switch {
	case pick < g.p.WAssign:
		return Assign{Dst: g.genLValue(nlocals, false), Src: g.genExpr(g.p.ExprDepth, nlocals, true)}
	case pick < g.p.WAssign+g.p.WArray:
		return Assign{Dst: g.genLValue(nlocals, true), Src: g.genExpr(g.p.ExprDepth-1, nlocals, true)}
	case pick < g.p.WAssign+g.p.WArray+g.p.WIf:
		return g.genIf(fidx, nlocals, nest)
	case pick < g.p.WAssign+g.p.WArray+g.p.WIf+g.p.WLoop:
		if nest >= 2 {
			return Assign{Dst: g.genLValue(nlocals, false), Src: g.genExpr(g.p.ExprDepth, nlocals, true)}
		}
		return g.genLoop(fidx, nlocals, nest)
	case pick < g.p.WAssign+g.p.WArray+g.p.WIf+g.p.WLoop+g.p.WSwitch:
		if nest >= 1 {
			return g.genIf(fidx, nlocals, nest)
		}
		return g.genSwitch(fidx, nlocals, nest)
	default:
		return g.genCall(fidx, nlocals)
	}
}

func (g *gen) genIf(fidx, nlocals, nest int) Stmt {
	st := If{Cond: g.genCond(nlocals, true)}
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n; i++ {
		st.Then = append(st.Then, g.genStmt(fidx, nlocals, nest+1))
	}
	if g.rng.Intn(100) < 40 {
		st.Else = append(st.Else, g.genStmt(fidx, nlocals, nest+1))
	}
	return st
}

func (g *gen) genLoop(fidx, nlocals, nest int) Stmt {
	v := g.freeLocal(nlocals)
	if v < 0 {
		// No induction variable available; degrade to an assignment.
		return Assign{Dst: g.genLValue(nlocals, false), Src: g.genExpr(g.p.ExprDepth, nlocals, true)}
	}
	st := Loop{
		Var:  v,
		From: 0,
		To:   int32(2 + g.rng.Intn(3)),
		Step: 1,
	}
	g.locked[v] = true
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		st.Body = append(st.Body, g.genStmt(fidx, nlocals, nest+1))
	}
	delete(g.locked, v)
	return st
}

func (g *gen) genSwitch(fidx, nlocals, nest int) Stmt {
	ncases := g.p.SwitchMin + g.rng.Intn(g.p.SwitchMax-g.p.SwitchMin+1)
	st := Switch{Var: g.rng.Intn(nlocals)}
	for i := 0; i < ncases; i++ {
		st.Cases = append(st.Cases, []Stmt{g.genStmt(fidx, nlocals, nest+2)})
	}
	st.Default = []Stmt{Assign{Dst: g.genLValue(nlocals, false), Src: g.genExpr(1, nlocals, false)}}
	return st
}

func (g *gen) genCall(fidx, nlocals int) Stmt {
	dst := g.genLValue(nlocals, false)
	// Prefer a generated callee within the DAG window; fall back to libc
	// near the end of the module.
	hi := fidx + g.p.CallWindow
	if hi > g.nfuncs {
		hi = g.nfuncs
	}
	if g.rng.Float64() >= g.p.LibcFrac && hi > fidx+1 {
		callee := fidx + 1 + g.rng.Intn(hi-fidx-1)
		nargs := g.rng.Intn(2)
		args := make([]Expr, nargs)
		for i := range args {
			args[i] = g.genExpr(1, nlocals, false)
		}
		return AssignCall{Dst: dst, Callee: funcName(callee), Args: args}
	}
	name, nargs := libcCallables[g.rng.Intn(len(libcCallables))].pick()
	args := make([]Expr, nargs)
	for i := range args {
		args[i] = g.genExpr(1, nlocals, false)
	}
	return AssignCall{Dst: dst, Callee: name, Libc: true, Args: args}
}

func (g *gen) genLValue(nlocals int, preferArray bool) LValue {
	if preferArray && len(g.arrays) > 0 {
		name := g.arrays[g.rng.Intn(len(g.arrays))]
		return LArray{Name: name, Idx: g.genExpr(1, nlocals, false)}
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		if len(g.scalars) > 0 {
			return LGlobal{Name: g.scalars[g.rng.Intn(len(g.scalars))]}
		}
	case 2:
		if len(g.arrays) > 0 {
			name := g.arrays[g.rng.Intn(len(g.arrays))]
			return LArray{Name: name, Idx: g.genExpr(1, nlocals, false)}
		}
	}
	if idx := g.freeLocal(nlocals); idx >= 0 {
		return LLocal{Idx: idx}
	}
	// Every local is an active induction variable: write a global instead.
	if len(g.scalars) > 0 {
		return LGlobal{Name: g.scalars[g.rng.Intn(len(g.scalars))]}
	}
	if len(g.arrays) > 0 {
		name := g.arrays[g.rng.Intn(len(g.arrays))]
		return LArray{Name: name, Idx: g.genExpr(1, nlocals, false)}
	}
	// No globals exist (never the case for benchmark profiles): fall back
	// to the last local, accepting a possibly self-resetting loop.
	return LLocal{Idx: nlocals - 1}
}

// genExpr builds an expression of at most the given depth. Temporaries run
// from r3 upward, so depth is bounded to keep the register stack inside
// r3..r8.
func (g *gen) genExpr(depth, nlocals int, allowMem bool) Expr {
	if depth <= 0 {
		return g.genLeafExpr(nlocals, allowMem)
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		return BinOp{Op: g.binOp(), L: g.genExpr(depth-1, nlocals, allowMem), R: g.genExpr(depth-1, nlocals, false)}
	case 3, 4, 5:
		op := g.immOp()
		var imm int32
		switch op {
		case "&", "|", "^":
			imm = g.immVal()
			if imm < 0 {
				imm = -imm
			}
		case "<<", ">>":
			imm = 1 + int32(g.rng.Intn(12))
		case "mask":
			imm = 16 + int32(g.rng.Intn(15)) // keep the low 1..16 bits
		default:
			imm = g.immVal()
		}
		return BinImm{Op: op, L: g.genExpr(depth-1, nlocals, allowMem), Imm: imm}
	case 6:
		return UnOp{Op: g.unOp(), X: g.genExpr(depth-1, nlocals, allowMem)}
	default:
		return g.genLeafExpr(nlocals, allowMem)
	}
}

func (g *gen) genLeafExpr(nlocals int, allowMem bool) Expr {
	if allowMem {
		switch g.rng.Intn(8) {
		case 0:
			if len(g.scalars) > 0 {
				return GlobalRef{Name: g.scalars[g.rng.Intn(len(g.scalars))]}
			}
		case 1:
			if len(g.arrays) > 0 {
				name := g.arrays[g.rng.Intn(len(g.arrays))]
				return ArrayRef{Name: name, Idx: Local{Idx: g.rng.Intn(nlocals)}}
			}
		}
	}
	if g.rng.Intn(3) == 0 {
		return Const{Val: g.immVal()}
	}
	return Local{Idx: g.rng.Intn(nlocals)}
}

func (g *gen) binOp() string {
	// Weighted toward add/sub, like real integer code.
	ops := []string{"+", "+", "+", "-", "-", "*", "&", "|", "^", "/"}
	return ops[g.rng.Intn(len(ops))]
}

func (g *gen) immOp() string {
	ops := []string{"+", "+", "+", "&", "|", "^", "<<", ">>", "mask"}
	return ops[g.rng.Intn(len(ops))]
}

func (g *gen) unOp() string {
	if g.rng.Intn(2) == 0 {
		return "neg"
	}
	return "not"
}

func (g *gen) immVal() int32 {
	// Mostly tiny immediates with a tail of larger ones, mirroring
	// compiler output.
	switch g.rng.Intn(10) {
	case 0, 1, 2, 3:
		return int32(g.rng.Intn(8))
	case 4, 5, 6:
		return int32(g.rng.Intn(64))
	case 7, 8:
		return int32(g.rng.Intn(int(g.p.ImmRange)))
	default:
		return int32(g.rng.Intn(int(g.p.ImmRange))) - g.p.ImmRange/2
	}
}

func (g *gen) genCond(nlocals int, allowMem bool) Cond {
	rels := []string{"==", "!=", "<", "<=", ">", ">="}
	crfs := []uint8{0, 0, 0, 1, 1, 7}
	c := Cond{
		Rel: rels[g.rng.Intn(len(rels))],
		L:   g.genExpr(1, nlocals, allowMem),
		CRF: crfs[g.rng.Intn(len(crfs))],
	}
	if g.rng.Intn(4) == 0 {
		c.Unsigned = true
	}
	if g.rng.Intn(3) == 0 {
		c.R = g.genExpr(1, nlocals, false)
	} else {
		c.Imm = int32(g.rng.Intn(16))
		if c.Unsigned && c.Imm < 0 {
			c.Imm = -c.Imm
		}
	}
	return c
}

// Package synth generates the benchmark corpus: synthetic PowerPC programs
// standing in for GCC-compiled SPEC CINT95 binaries. Programs are produced
// the way the paper says real redundancy arises (§1.1) — by syntax-directed
// translation: a miniature C-like IR is expanded through fixed instruction
// templates with a small, deterministic register discipline, so identical
// source shapes yield identical instruction encodings everywhere. Eight
// per-benchmark profiles control size and statement mix; a synthetic libc
// is statically linked into every program, matching the paper's
// statically-linked measurement setup.
//
// Every generated program is executable and terminating: the call graph is
// a DAG (functions only call higher-indexed functions or libc), every loop
// is counted with a small constant bound, and every function begins with a
// depth guard so a driver can bound total work.
package synth

// Expr is a side-effect-free integer expression. Calls are not expressions;
// they appear only as the source of an AssignCall statement, which keeps
// the SDTS register discipline spill-free.
type Expr interface{ exprNode() }

// Const is an integer literal.
type Const struct{ Val int32 }

// Local references a function local by index; the first NParams locals are
// the parameters. Local 0 of every generated function is the depth guard.
type Local struct{ Idx int }

// GlobalRef reads a global word scalar.
type GlobalRef struct{ Name string }

// ArrayRef reads global[Idx & (Len-1)] — generation masks the index so any
// runtime value is safe.
type ArrayRef struct {
	Name string
	Idx  Expr
}

// UnOp is a unary operator.
type UnOp struct {
	Op string // "neg", "not"
	X  Expr
}

// BinOp is a binary operator over two subexpressions.
type BinOp struct {
	Op   string // "+", "-", "*", "/", "&", "|", "^"
	L, R Expr
}

// BinImm applies an operator with an immediate operand, mapping to the
// D-form immediate instructions.
type BinImm struct {
	Op  string // "+", "&", "|", "^", "<<", ">>", "mask"
	L   Expr
	Imm int32
}

func (Const) exprNode()     {}
func (Local) exprNode()     {}
func (GlobalRef) exprNode() {}
func (ArrayRef) exprNode()  {}
func (UnOp) exprNode()      {}
func (BinOp) exprNode()     {}
func (BinImm) exprNode()    {}

// Cond is a comparison controlling an If or Loop.
type Cond struct {
	Rel      string // "==", "!=", "<", "<=", ">", ">="
	Unsigned bool
	L        Expr
	R        Expr  // nil when immediate form
	Imm      int32 // used when R == nil
	CRF      uint8 // condition-register field the compiler chose
}

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// Assign stores an expression to a local, global, or array element.
type Assign struct {
	Dst LValue
	Src Expr
}

// AssignCall calls a function and stores its result. Args must be
// call-free. For generated (non-libc) callees, the code generator
// automatically prepends the decremented depth as the first argument.
type AssignCall struct {
	Dst    LValue
	Callee string
	Libc   bool // callee is a libc routine (no depth argument)
	Args   []Expr
}

// If branches on a condition.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt // may be nil
}

// Loop is a counted loop: for (v = From; v < To; v += Step) Body. Bounds
// are constants so every program terminates.
type Loop struct {
	Var      int // local index
	From, To int32
	Step     int32
	Body     []Stmt
}

// Switch dispatches on a local through a jump table (the GCC computed-goto
// lowering) when it has enough cases.
type Switch struct {
	Var     int // local index, masked to range by the generator
	Cases   [][]Stmt
	Default []Stmt
}

// Return leaves the function with the value of an expression.
type Return struct{ Val Expr }

// PutInt prints an integer through the simulator syscall; drivers use it to
// make execution observable.
type PutInt struct{ Val Expr }

func (Assign) stmtNode()     {}
func (AssignCall) stmtNode() {}
func (If) stmtNode()         {}
func (Loop) stmtNode()       {}
func (Switch) stmtNode()     {}
func (Return) stmtNode()     {}
func (PutInt) stmtNode()     {}

// LValue is an assignment destination.
type LValue interface{ lvalNode() }

// LLocal writes a local.
type LLocal struct{ Idx int }

// LGlobal writes a global scalar.
type LGlobal struct{ Name string }

// LArray writes global[Idx & (Len-1)].
type LArray struct {
	Name string
	Idx  Expr
}

func (LLocal) lvalNode()  {}
func (LGlobal) lvalNode() {}
func (LArray) lvalNode()  {}

// FuncDecl is one function. Locals are word-sized; the first NParams are
// parameters (local 0 is always the depth parameter for generated
// functions).
type FuncDecl struct {
	Name    string
	NParams int
	NLocals int
	Body    []Stmt
	Leaf    bool // no calls; compiled without a stack frame
}

// Global is a scalar (Len == 1) or array in the data section. Len must be
// a power of two so array indices can be masked safely. Elem is the
// element size in bytes (1, 2 or 4); zero means 4. Narrow elements load
// zero-extended through lbzx/lhzx, mirroring the byte-table code the
// paper's Figure 2 example shows.
type Global struct {
	Name string
	Len  int
	Elem int

	// Init optionally provides initial element values (constant lookup
	// tables). Shorter than Len is allowed; the rest stays zero. Values
	// are truncated to the element width.
	Init []int32
}

// Module is a complete translation unit.
type Module struct {
	Name    string
	Funcs   []*FuncDecl
	Globals []*Global
}

package synth

// Known-answer tests: hand-written IR programs whose results are computed
// independently in Go. Where the random corpus checks structure and
// determinism, these check that every IR construct — loops, nested ifs,
// switches through jump tables, array traffic, globals, calls with
// arguments, libc calls — compiles to code that computes the right values.

import (
	"fmt"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/program"
)

// compileAndRun compiles a module, appends libc and a driver that calls
// "result" with a large depth budget, and returns the integer the program
// prints.
func compileAndRun(t *testing.T, m *Module) int64 {
	t.Helper()
	cg := NewCodegen(m.Name)
	if err := cg.CompileModule(m); err != nil {
		t.Fatal(err)
	}
	EmitLibc(cg.Builder())
	cg.EmitMain([]string{"result"}, 1000)
	p, err := cg.Link()
	if err != nil {
		t.Fatal(err)
	}
	return runProgram(t, p)
}

func runProgram(t *testing.T, p *program.Program) int64 {
	t.Helper()
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	out := string(cpu.Output())
	var v int64
	if _, err := fmt.Sscanf(out, "%d", &v); err != nil {
		t.Fatalf("unparsable output %q", out)
	}
	return v
}

// TestKnownAnswerArithmetic: result(d) computes a polynomial over
// constants with all binary operators; expected value computed in Go.
func TestKnownAnswerArithmetic(t *testing.T) {
	expr := BinOp{
		Op: "-",
		L: BinOp{Op: "*",
			L: BinOp{Op: "+", L: Const{13}, R: Const{29}}, // 42
			R: BinImm{Op: "<<", L: Const{3}, Imm: 2},      // 12
		}, // 504
		R: BinOp{Op: "/",
			L: Const{1000},
			R: BinImm{Op: "+", L: Const{5}, Imm: 3}, // 8
		}, // 125
	} // 379
	m := &Module{
		Name: "arith",
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 2,
			Body: []Stmt{Return{Val: expr}},
		}},
	}
	got := compileAndRun(t, m)
	if got != 379 {
		t.Fatalf("got %d, want 379", got)
	}
}

// TestKnownAnswerLoopsAndGlobals: accumulate i*i into a global over a
// counted loop; 0²+…+5² = 55.
func TestKnownAnswerLoopsAndGlobals(t *testing.T) {
	m := &Module{
		Name:    "sumsq",
		Globals: []*Global{{Name: "acc", Len: 1}},
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Assign{Dst: LGlobal{"acc"}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 6, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "*", L: Local{1}, R: Local{1}}},
					Assign{Dst: LGlobal{"acc"}, Src: BinOp{Op: "+", L: GlobalRef{"acc"}, R: Local{2}}},
				}},
				Return{Val: GlobalRef{"acc"}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 55 {
		t.Fatalf("got %d, want 55", got)
	}
}

// TestKnownAnswerSwitch: dispatch over a jump table, accumulating distinct
// constants per case: cases 0..3 → 1,20,300,4000; i=4 hits default (+7).
func TestKnownAnswerSwitch(t *testing.T) {
	m := &Module{
		Name: "switch",
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Assign{Dst: LLocal{2}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 5, Step: 1, Body: []Stmt{
					Switch{
						Var: 1,
						Cases: [][]Stmt{
							{Assign{Dst: LLocal{2}, Src: BinImm{Op: "+", L: Local{2}, Imm: 1}}},
							{Assign{Dst: LLocal{2}, Src: BinImm{Op: "+", L: Local{2}, Imm: 20}}},
							{Assign{Dst: LLocal{2}, Src: BinImm{Op: "+", L: Local{2}, Imm: 300}}},
							{Assign{Dst: LLocal{2}, Src: BinImm{Op: "+", L: Local{2}, Imm: 4000}}},
						},
						Default: []Stmt{Assign{Dst: LLocal{2}, Src: BinImm{Op: "+", L: Local{2}, Imm: 7}}},
					},
				}},
				Return{Val: Local{2}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 4328 {
		t.Fatalf("got %d, want 4328", got)
	}
}

// TestKnownAnswerCallsAndLibc: f(d, x) = lc_max(x, 10) + g(d-1, x) where
// g(d, x) = x*3; result = lc_max(4,10) + 12 = 22.
func TestKnownAnswerCallsAndLibc(t *testing.T) {
	m := &Module{
		Name: "calls",
		Funcs: []*FuncDecl{
			{
				Name: "result", NParams: 1, NLocals: 4,
				Body: []Stmt{
					Assign{Dst: LLocal{1}, Src: Const{4}},
					AssignCall{Dst: LLocal{2}, Callee: "lc_max", Libc: true,
						Args: []Expr{Local{1}, Const{10}}},
					AssignCall{Dst: LLocal{3}, Callee: "f001",
						Args: []Expr{Local{1}}},
					Return{Val: BinOp{Op: "+", L: Local{2}, R: Local{3}}},
				},
			},
			{
				Name: "f001", NParams: 2, NLocals: 2,
				Body: []Stmt{
					Return{Val: BinOp{Op: "*", L: Local{1}, R: Const{3}}},
				},
			},
		},
	}
	if got := compileAndRun(t, m); got != 22 {
		t.Fatalf("got %d, want 22", got)
	}
}

// TestKnownAnswerArrays: write i*2 into a[i] for i<8, then sum via
// ArrayRef with masked indices: sum = 2*(0+…+7) = 56.
func TestKnownAnswerArrays(t *testing.T) {
	m := &Module{
		Name:    "arrays",
		Globals: []*Global{{Name: "a00", Len: 8}},
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Loop{Var: 1, From: 0, To: 8, Step: 1, Body: []Stmt{
					Assign{Dst: LArray{Name: "a00", Idx: Local{1}},
						Src: BinImm{Op: "<<", L: Local{1}, Imm: 1}},
				}},
				Assign{Dst: LLocal{2}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 8, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "+", L: Local{2},
						R: ArrayRef{Name: "a00", Idx: Local{1}}}},
				}},
				Return{Val: Local{2}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 56 {
		t.Fatalf("got %d, want 56", got)
	}
}

// TestKnownAnswerByteArray: byte tables store truncated values and load
// them zero-extended (lbzx/stbx). a[i] = (i*40)&0xFF; sum over i<8 is
// 0+40+80+120+160+200+240+24 = 864.
func TestKnownAnswerByteArray(t *testing.T) {
	m := &Module{
		Name:    "bytes",
		Globals: []*Global{{Name: "tab", Len: 8, Elem: 1}},
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Loop{Var: 1, From: 0, To: 8, Step: 1, Body: []Stmt{
					Assign{Dst: LArray{Name: "tab", Idx: Local{1}},
						Src: BinOp{Op: "*", L: Local{1}, R: Const{40}}},
				}},
				Assign{Dst: LLocal{2}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 8, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "+", L: Local{2},
						R: ArrayRef{Name: "tab", Idx: Local{1}}}},
				}},
				Return{Val: Local{2}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 864 {
		t.Fatalf("got %d, want 864", got)
	}
}

// TestKnownAnswerHalfArray: halfword tables truncate to 16 bits.
// a[i] = i*20000 & 0xFFFF for i<4: 0, 20000, 40000, 60000 → sum 120000.
func TestKnownAnswerHalfArray(t *testing.T) {
	m := &Module{
		Name:    "halves",
		Globals: []*Global{{Name: "tab", Len: 4, Elem: 2}},
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Loop{Var: 1, From: 0, To: 4, Step: 1, Body: []Stmt{
					Assign{Dst: LArray{Name: "tab", Idx: Local{1}},
						Src: BinOp{Op: "*", L: Local{1}, R: Const{20000}}},
				}},
				Assign{Dst: LLocal{2}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 4, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "+", L: Local{2},
						R: ArrayRef{Name: "tab", Idx: Local{1}}}},
				}},
				Return{Val: Local{2}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 120000 {
		t.Fatalf("got %d, want 120000", got)
	}
}

// TestKnownAnswerInitializedTable: read a constant lookup table without
// writing it first. Word table [7, -3, 100, 11], byte table [200, 5]
// (loaded zero-extended): 7-3+100+11 + 200+5 = 320.
func TestKnownAnswerInitializedTable(t *testing.T) {
	m := &Module{
		Name: "consts",
		Globals: []*Global{
			{Name: "wtab", Len: 4, Init: []int32{7, -3, 100, 11}},
			{Name: "btab", Len: 2, Elem: 1, Init: []int32{200, 5}},
		},
		Funcs: []*FuncDecl{{
			Name: "result", NParams: 1, NLocals: 3,
			Body: []Stmt{
				Assign{Dst: LLocal{2}, Src: Const{0}},
				Loop{Var: 1, From: 0, To: 4, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "+", L: Local{2},
						R: ArrayRef{Name: "wtab", Idx: Local{1}}}},
				}},
				Loop{Var: 1, From: 0, To: 2, Step: 1, Body: []Stmt{
					Assign{Dst: LLocal{2}, Src: BinOp{Op: "+", L: Local{2},
						R: ArrayRef{Name: "btab", Idx: Local{1}}}},
				}},
				Return{Val: Local{2}},
			},
		}},
	}
	if got := compileAndRun(t, m); got != 320 {
		t.Fatalf("got %d, want 320", got)
	}
}

// TestKnownAnswerDepthGuard: a self-chain of calls burns one depth unit
// per level; with the driver's budget of 1000 but the chain only 3 long,
// result returns 3 levels of +1. With depth 0 the guard returns 1.
func TestKnownAnswerDepthGuard(t *testing.T) {
	m := &Module{
		Name: "depth",
		Funcs: []*FuncDecl{
			{Name: "result", NParams: 1, NLocals: 2, Body: []Stmt{
				AssignCall{Dst: LLocal{1}, Callee: "f001", Args: nil},
				Return{Val: BinImm{Op: "+", L: Local{1}, Imm: 1}},
			}},
			{Name: "f001", NParams: 1, NLocals: 2, Body: []Stmt{
				AssignCall{Dst: LLocal{1}, Callee: "f002", Args: nil},
				Return{Val: BinImm{Op: "+", L: Local{1}, Imm: 1}},
			}},
			{Name: "f002", NParams: 1, NLocals: 2, Body: []Stmt{
				Return{Val: Const{100}},
			}},
		},
	}
	if got := compileAndRun(t, m); got != 102 {
		t.Fatalf("got %d, want 102", got)
	}

	// Same module, driver depth 1: result runs (depth 1), f001 is entered
	// with depth 0 and its guard returns 1 immediately, so 1+1 = 2.
	cg := NewCodegen("depth0")
	if err := cg.CompileModule(m); err != nil {
		t.Fatal(err)
	}
	EmitLibc(cg.Builder())
	cg.EmitMain([]string{"result"}, 1)
	p, err := cg.Link()
	if err != nil {
		t.Fatal(err)
	}
	if got := runProgram(t, p); got != 2 {
		t.Fatalf("depth-1 run: got %d, want 2", got)
	}
}

// TestKnownAnswerSievePrimes builds an exact sieve directly against the
// builder API (the IR's masked indices are deliberately lossy) and counts
// primes below 64: there are 18.
func TestKnownAnswerSievePrimes(t *testing.T) {
	const n = 64
	b := program.NewBuilder("sieve")
	arr := b.ReserveData(4*n, 4)
	base := uint32(program.DefaultDataBase + arr)

	f := b.Func("main")
	f.Emit(ppc.Lis(20, int32(int16(base>>16))))
	f.Emit(ppc.Ori(20, 20, int32(base&0xFFFF)))
	// for i = 2; i*i < n; i++ { for j = i*i; j < n; j += i { a[j]=1 } }
	f.Emit(ppc.Li(21, 2)) // i
	f.Label("iloop")
	f.Emit(ppc.Mullw(22, 21, 21))
	f.Emit(ppc.Cmpwi(0, 22, n))
	f.Branch(ppc.Bge(0, 0), "count")
	f.Label("jloop")
	f.Emit(ppc.Slwi(23, 22, 2))
	f.Emit(ppc.Li(24, 1))
	f.Emit(ppc.Stwx(24, 20, 23))
	f.Emit(ppc.Add(22, 22, 21))
	f.Emit(ppc.Cmpwi(0, 22, n))
	f.Branch(ppc.Blt(0, 0), "jloop")
	f.Emit(ppc.Addi(21, 21, 1))
	f.Branch(ppc.B(0), "iloop")
	f.Label("count")
	f.Emit(ppc.Li(25, 0)) // count
	f.Emit(ppc.Li(21, 2))
	f.Label("cloop")
	f.Emit(ppc.Slwi(23, 21, 2))
	f.Emit(ppc.Lwzx(24, 20, 23))
	f.Emit(ppc.Cmpwi(0, 24, 0))
	f.Branch(ppc.Bne(0, 0), "skip")
	f.Emit(ppc.Addi(25, 25, 1))
	f.Label("skip")
	f.Emit(ppc.Addi(21, 21, 1))
	f.Emit(ppc.Cmpwi(0, 21, n))
	f.Branch(ppc.Blt(0, 0), "cloop")
	f.Emit(ppc.Mr(3, 25))
	f.Emit(ppc.Li(0, machine.SysPutint))
	f.Emit(ppc.Sc())
	f.Emit(ppc.Li(0, machine.SysExit))
	f.Emit(ppc.Sc())

	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if got := runProgram(t, p); got != 18 {
		t.Fatalf("primes below 64: got %d, want 18", got)
	}

	// And the compressed image computes the same count.
	img, err := core.Compress(p.Clone(), core.Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := core.NewMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	var v int64
	if _, err := fmt.Sscanf(string(cpu.Output()), "%d", &v); err != nil || v != 18 {
		t.Fatalf("compressed sieve: %q (%v)", cpu.Output(), err)
	}
}

package synth

import (
	"repro/internal/ppc"
	"repro/internal/program"
)

// The synthetic libc: small leaf routines emitted with the same fixed
// templates as generated code, statically linked into every benchmark.
// The paper's measurements statically link libraries ("Linking was done
// statically so that the libraries are included in the results", §4), so
// the corpus does too — including routines no benchmark happens to call,
// exactly as a real static link pulls in unused library members.

// libcFn describes a libc routine callable from generated code (scalar
// arguments only, guaranteed terminating).
type libcFn struct {
	name  string
	nargs int
}

func (l libcFn) pick() (string, int) { return l.name, l.nargs }

// libcCallables lists the scalar routines the generator may call.
var libcCallables = []libcFn{
	{"lc_abs", 1},
	{"lc_sign", 1},
	{"lc_min", 2},
	{"lc_max", 2},
	{"lc_avg", 2},
	{"lc_clamp8", 1},
	{"lc_hash", 1},
	{"lc_parity", 1},
	{"lc_popcount8", 1},
	{"lc_bitrev8", 1},
	{"lc_tolower", 1},
	{"lc_toupper", 1},
	{"lc_isdigit", 1},
	{"lc_isalpha", 1},
	{"lc_mod", 2},
	{"lc_gcd16", 2},
	{"lc_sq", 1},
	{"lc_dist", 2},
	{"lc_sext8", 1},
	{"lc_swaph", 1},
}

// LibcNames lists every libc function, callable or not, in emission order.
func LibcNames() []string {
	return []string{
		"lc_abs", "lc_sign", "lc_min", "lc_max", "lc_avg", "lc_clamp8",
		"lc_hash", "lc_parity", "lc_popcount8", "lc_bitrev8",
		"lc_tolower", "lc_toupper", "lc_isdigit", "lc_isalpha",
		"lc_mod", "lc_gcd16", "lc_sq", "lc_dist", "lc_sext8", "lc_swaph",
		"lc_memcpy", "lc_memset", "lc_strlen", "lc_strcmp", "lc_sum", "lc_fill",
	}
}

// EmitLibc appends the libc functions to the module.
func EmitLibc(b *program.Builder) {
	// lc_abs(x) -> |x|
	f := b.Func("lc_abs")
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Bge(0, 0), ".pos")
	f.Emit(ppc.Neg(3, 3))
	f.Label(".pos")
	emitLeafRet(f)

	// lc_sign(x) -> -1, 0, 1
	f = b.Func("lc_sign")
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Blt(0, 0), ".neg")
	f.Branch(ppc.Beq(0, 0), ".zero")
	f.Emit(ppc.Li(3, 1))
	f.Branch(ppc.B(0), ".out")
	f.Label(".neg")
	f.Emit(ppc.Li(3, -1))
	f.Branch(ppc.B(0), ".out")
	f.Label(".zero")
	f.Emit(ppc.Li(3, 0))
	f.Label(".out")
	emitLeafRet(f)

	// lc_min(a,b)
	f = b.Func("lc_min")
	f.Emit(ppc.Cmpw(0, 3, 4))
	f.Branch(ppc.Ble(0, 0), ".out")
	f.Emit(ppc.Mr(3, 4))
	f.Label(".out")
	emitLeafRet(f)

	// lc_max(a,b)
	f = b.Func("lc_max")
	f.Emit(ppc.Cmpw(0, 3, 4))
	f.Branch(ppc.Bge(0, 0), ".out")
	f.Emit(ppc.Mr(3, 4))
	f.Label(".out")
	emitLeafRet(f)

	// lc_avg(a,b) -> (a+b)>>1
	f = b.Func("lc_avg")
	f.Emit(ppc.Add(3, 3, 4))
	f.Emit(ppc.Srawi(3, 3, 1))
	emitLeafRet(f)

	// lc_clamp8(x) -> clamp to [0,255]
	f = b.Func("lc_clamp8")
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Bge(0, 0), ".hi")
	f.Emit(ppc.Li(3, 0))
	f.Label(".hi")
	f.Emit(ppc.Cmpwi(0, 3, 255))
	f.Branch(ppc.Ble(0, 0), ".out")
	f.Emit(ppc.Li(3, 255))
	f.Label(".out")
	emitLeafRet(f)

	// lc_hash(x): xorshift-style mix
	f = b.Func("lc_hash")
	f.Emit(ppc.Srwi(9, 3, 16))
	f.Emit(ppc.Xor(3, 3, 9))
	f.Emit(ppc.Lis(9, 0x45d9))
	f.Emit(ppc.Ori(9, 9, 0xf3b))
	f.Emit(ppc.Mullw(3, 3, 9))
	f.Emit(ppc.Srwi(9, 3, 16))
	f.Emit(ppc.Xor(3, 3, 9))
	emitLeafRet(f)

	// lc_parity(x): parity of low 8 bits
	f = b.Func("lc_parity")
	f.Emit(ppc.Li(9, 0))
	f.Emit(ppc.Li(10, 8))
	f.Emit(ppc.Mtctr(10))
	f.Label(".loop")
	f.Emit(ppc.AndiRc(10, 3, 1))
	f.Emit(ppc.Xor(9, 9, 10))
	f.Emit(ppc.Srwi(3, 3, 1))
	f.Branch(ppc.Bdnz(0), ".loop")
	f.Emit(ppc.Mr(3, 9))
	emitLeafRet(f)

	// lc_popcount8(x)
	f = b.Func("lc_popcount8")
	f.Emit(ppc.Li(9, 0))
	f.Emit(ppc.Li(10, 8))
	f.Emit(ppc.Mtctr(10))
	f.Label(".loop")
	f.Emit(ppc.AndiRc(10, 3, 1))
	f.Emit(ppc.Add(9, 9, 10))
	f.Emit(ppc.Srwi(3, 3, 1))
	f.Branch(ppc.Bdnz(0), ".loop")
	f.Emit(ppc.Mr(3, 9))
	emitLeafRet(f)

	// lc_bitrev8(x): reverse low 8 bits
	f = b.Func("lc_bitrev8")
	f.Emit(ppc.Li(9, 0))
	f.Emit(ppc.Li(10, 8))
	f.Emit(ppc.Mtctr(10))
	f.Label(".loop")
	f.Emit(ppc.Slwi(9, 9, 1))
	f.Emit(ppc.AndiRc(10, 3, 1))
	f.Emit(ppc.Or(9, 9, 10))
	f.Emit(ppc.Srwi(3, 3, 1))
	f.Branch(ppc.Bdnz(0), ".loop")
	f.Emit(ppc.Mr(3, 9))
	emitLeafRet(f)

	// lc_tolower(c)
	f = b.Func("lc_tolower")
	f.Emit(ppc.Cmpwi(0, 3, 'A'))
	f.Branch(ppc.Blt(0, 0), ".out")
	f.Emit(ppc.Cmpwi(0, 3, 'Z'))
	f.Branch(ppc.Bgt(0, 0), ".out")
	f.Emit(ppc.Addi(3, 3, 32))
	f.Label(".out")
	emitLeafRet(f)

	// lc_toupper(c)
	f = b.Func("lc_toupper")
	f.Emit(ppc.Cmpwi(0, 3, 'a'))
	f.Branch(ppc.Blt(0, 0), ".out")
	f.Emit(ppc.Cmpwi(0, 3, 'z'))
	f.Branch(ppc.Bgt(0, 0), ".out")
	f.Emit(ppc.Addi(3, 3, -32))
	f.Label(".out")
	emitLeafRet(f)

	// lc_isdigit(c)
	f = b.Func("lc_isdigit")
	f.Emit(ppc.Addi(3, 3, -'0'))
	f.Emit(ppc.Cmplwi(0, 3, 9))
	f.Emit(ppc.Li(3, 0))
	f.Branch(ppc.Bgt(0, 0), ".out")
	f.Emit(ppc.Li(3, 1))
	f.Label(".out")
	emitLeafRet(f)

	// lc_isalpha(c)
	f = b.Func("lc_isalpha")
	f.Emit(ppc.Ori(9, 3, 0x20))
	f.Emit(ppc.Addi(9, 9, -'a'))
	f.Emit(ppc.Cmplwi(0, 9, 25))
	f.Emit(ppc.Li(3, 0))
	f.Branch(ppc.Bgt(0, 0), ".out")
	f.Emit(ppc.Li(3, 1))
	f.Label(".out")
	emitLeafRet(f)

	// lc_mod(a,b) -> a - (a/b)*b  (0 when b == 0, via divw semantics)
	f = b.Func("lc_mod")
	f.Emit(ppc.Divw(9, 3, 4))
	f.Emit(ppc.Mullw(9, 9, 4))
	f.Emit(ppc.Subf(3, 9, 3))
	emitLeafRet(f)

	// lc_gcd16(a,b): 16 bounded Euclid steps on |a|,|b|
	f = b.Func("lc_gcd16")
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Bge(0, 0), ".p1")
	f.Emit(ppc.Neg(3, 3))
	f.Label(".p1")
	f.Emit(ppc.Cmpwi(0, 4, 0))
	f.Branch(ppc.Bge(0, 0), ".p2")
	f.Emit(ppc.Neg(4, 4))
	f.Label(".p2")
	f.Emit(ppc.Li(10, 16))
	f.Emit(ppc.Mtctr(10))
	f.Label(".loop")
	f.Emit(ppc.Cmpwi(0, 4, 0))
	f.Branch(ppc.Beq(0, 0), ".done")
	f.Emit(ppc.Divw(9, 3, 4))
	f.Emit(ppc.Mullw(9, 9, 4))
	f.Emit(ppc.Subf(9, 9, 3)) // r9 = a mod b
	f.Emit(ppc.Mr(3, 4))
	f.Emit(ppc.Mr(4, 9))
	f.Branch(ppc.Bdnz(0), ".loop")
	f.Label(".done")
	emitLeafRet(f)

	// lc_sq(x)
	f = b.Func("lc_sq")
	f.Emit(ppc.Mullw(3, 3, 3))
	emitLeafRet(f)

	// lc_dist(a,b) -> |a-b|
	f = b.Func("lc_dist")
	f.Emit(ppc.Subf(3, 4, 3))
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Bge(0, 0), ".out")
	f.Emit(ppc.Neg(3, 3))
	f.Label(".out")
	emitLeafRet(f)

	// lc_sext8(x)
	f = b.Func("lc_sext8")
	f.Emit(ppc.Extsb(3, 3))
	emitLeafRet(f)

	// lc_swaph(x): swap halfwords
	f = b.Func("lc_swaph")
	f.Emit(ppc.Rlwinm(9, 3, 16, 0, 31))
	f.Emit(ppc.Mr(3, 9))
	emitLeafRet(f)

	// Pointer routines below are linked but not called by generated code —
	// dead static-library weight, as in a real static link.

	// lc_memcpy(dst, src, n) byte copy
	f = b.Func("lc_memcpy")
	f.Emit(ppc.Mr(9, 3))
	f.Branch(ppc.B(0), ".check")
	f.Label(".loop")
	f.Emit(ppc.Lbz(10, 0, 4))
	f.Emit(ppc.Stb(10, 0, 9))
	f.Emit(ppc.Addi(4, 4, 1))
	f.Emit(ppc.Addi(9, 9, 1))
	f.Emit(ppc.Addi(5, 5, -1))
	f.Label(".check")
	f.Emit(ppc.Cmpwi(0, 5, 0))
	f.Branch(ppc.Bgt(0, 0), ".loop")
	emitLeafRet(f)

	// lc_memset(dst, c, n)
	f = b.Func("lc_memset")
	f.Emit(ppc.Mr(9, 3))
	f.Branch(ppc.B(0), ".check")
	f.Label(".loop")
	f.Emit(ppc.Stb(4, 0, 9))
	f.Emit(ppc.Addi(9, 9, 1))
	f.Emit(ppc.Addi(5, 5, -1))
	f.Label(".check")
	f.Emit(ppc.Cmpwi(0, 5, 0))
	f.Branch(ppc.Bgt(0, 0), ".loop")
	emitLeafRet(f)

	// lc_strlen(s)
	f = b.Func("lc_strlen")
	f.Emit(ppc.Mr(9, 3))
	f.Emit(ppc.Li(3, 0))
	f.Label(".loop")
	f.Emit(ppc.Lbz(10, 0, 9))
	f.Emit(ppc.Cmpwi(0, 10, 0))
	f.Branch(ppc.Beq(0, 0), ".out")
	f.Emit(ppc.Addi(3, 3, 1))
	f.Emit(ppc.Addi(9, 9, 1))
	f.Branch(ppc.B(0), ".loop")
	f.Label(".out")
	emitLeafRet(f)

	// lc_strcmp(a,b)
	f = b.Func("lc_strcmp")
	f.Label(".loop")
	f.Emit(ppc.Lbz(9, 0, 3))
	f.Emit(ppc.Lbz(10, 0, 4))
	f.Emit(ppc.Cmpw(0, 9, 10))
	f.Branch(ppc.Bne(0, 0), ".diff")
	f.Emit(ppc.Cmpwi(0, 9, 0))
	f.Branch(ppc.Beq(0, 0), ".eq")
	f.Emit(ppc.Addi(3, 3, 1))
	f.Emit(ppc.Addi(4, 4, 1))
	f.Branch(ppc.B(0), ".loop")
	f.Label(".diff")
	f.Emit(ppc.Subf(3, 10, 9))
	f.Branch(ppc.B(0), ".out")
	f.Label(".eq")
	f.Emit(ppc.Li(3, 0))
	f.Label(".out")
	emitLeafRet(f)

	// lc_sum(ptr, n) word sum
	f = b.Func("lc_sum")
	f.Emit(ppc.Mr(9, 3))
	f.Emit(ppc.Li(3, 0))
	f.Branch(ppc.B(0), ".check")
	f.Label(".loop")
	f.Emit(ppc.Lwz(10, 0, 9))
	f.Emit(ppc.Add(3, 3, 10))
	f.Emit(ppc.Addi(9, 9, 4))
	f.Emit(ppc.Addi(4, 4, -1))
	f.Label(".check")
	f.Emit(ppc.Cmpwi(0, 4, 0))
	f.Branch(ppc.Bgt(0, 0), ".loop")
	emitLeafRet(f)

	// lc_fill(ptr, n, v) word fill
	f = b.Func("lc_fill")
	f.Emit(ppc.Mr(9, 3))
	f.Branch(ppc.B(0), ".check")
	f.Label(".loop")
	f.Emit(ppc.Stw(5, 0, 9))
	f.Emit(ppc.Addi(9, 9, 4))
	f.Emit(ppc.Addi(4, 4, -1))
	f.Label(".check")
	f.Emit(ppc.Cmpwi(0, 4, 0))
	f.Branch(ppc.Bgt(0, 0), ".loop")
	emitLeafRet(f)
}

// emitLeafRet emits the standard leaf-function return, marked as the
// epilogue for Table 3 accounting.
func emitLeafRet(f *program.FuncBuilder) {
	f.BeginEpilogue()
	f.Emit(ppc.Blr())
	f.EndEpilogue()
}

package synth

import (
	"fmt"
	"strings"
)

// Print renders a module as pseudo-C source — the human-readable view of
// what the generator produced, used by debugging tools and error reports.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// module %s\n", m.Name)
	for _, g := range m.Globals {
		elem := g.Elem
		if elem == 0 {
			elem = 4
		}
		ty := map[int]string{1: "u8", 2: "u16", 4: "u32"}[elem]
		if g.Len == 1 {
			fmt.Fprintf(&sb, "%s %s;\n", ty, g.Name)
			continue
		}
		fmt.Fprintf(&sb, "%s %s[%d]", ty, g.Name, g.Len)
		if len(g.Init) > 0 {
			sb.WriteString(" = {")
			for i, v := range g.Init {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%d", v)
			}
			sb.WriteString("}")
		}
		sb.WriteString(";\n")
	}
	for _, f := range m.Funcs {
		sb.WriteByte('\n')
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *FuncDecl) {
	kind := ""
	if f.Leaf {
		kind = " // leaf"
	}
	params := make([]string, f.NParams)
	for i := range params {
		params[i] = fmt.Sprintf("l%d", i)
	}
	fmt.Fprintf(sb, "func %s(%s) {%s\n", f.Name, strings.Join(params, ", "), kind)
	if f.NLocals > f.NParams {
		locals := make([]string, 0, f.NLocals-f.NParams)
		for i := f.NParams; i < f.NLocals; i++ {
			locals = append(locals, fmt.Sprintf("l%d", i))
		}
		fmt.Fprintf(sb, "    var %s\n", strings.Join(locals, ", "))
	}
	printStmts(sb, f.Body, 1)
	sb.WriteString("}\n")
}

func printStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", ind, lvalStr(st.Dst), exprStr(st.Src))
		case AssignCall:
			args := make([]string, len(st.Args))
			for i, a := range st.Args {
				args[i] = exprStr(a)
			}
			callee := st.Callee
			if !st.Libc {
				args = append([]string{"depth-1"}, args...)
			}
			fmt.Fprintf(sb, "%s%s = %s(%s)\n", ind, lvalStr(st.Dst), callee, strings.Join(args, ", "))
		case If:
			fmt.Fprintf(sb, "%sif %s {\n", ind, condStr(st.Cond))
			printStmts(sb, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				printStmts(sb, st.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case Loop:
			fmt.Fprintf(sb, "%sfor l%d = %d; l%d < %d; l%d += %d {\n",
				ind, st.Var, st.From, st.Var, st.To, st.Var, st.Step)
			printStmts(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case Switch:
			fmt.Fprintf(sb, "%sswitch l%d {\n", ind, st.Var)
			for i, c := range st.Cases {
				fmt.Fprintf(sb, "%scase %d:\n", ind, i)
				printStmts(sb, c, depth+1)
			}
			fmt.Fprintf(sb, "%sdefault:\n", ind)
			printStmts(sb, st.Default, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case Return:
			fmt.Fprintf(sb, "%sreturn %s\n", ind, exprStr(st.Val))
		case PutInt:
			fmt.Fprintf(sb, "%sputint(%s)\n", ind, exprStr(st.Val))
		default:
			fmt.Fprintf(sb, "%s/* unknown stmt %T */\n", ind, s)
		}
	}
}

func lvalStr(l LValue) string {
	switch d := l.(type) {
	case LLocal:
		return fmt.Sprintf("l%d", d.Idx)
	case LGlobal:
		return d.Name
	case LArray:
		return fmt.Sprintf("%s[%s]", d.Name, exprStr(d.Idx))
	}
	return fmt.Sprintf("/*%T*/", l)
}

func exprStr(e Expr) string {
	switch x := e.(type) {
	case Const:
		return fmt.Sprintf("%d", x.Val)
	case Local:
		return fmt.Sprintf("l%d", x.Idx)
	case GlobalRef:
		return x.Name
	case ArrayRef:
		return fmt.Sprintf("%s[%s]", x.Name, exprStr(x.Idx))
	case UnOp:
		op := map[string]string{"neg": "-", "not": "~"}[x.Op]
		return fmt.Sprintf("%s(%s)", op, exprStr(x.X))
	case BinOp:
		return fmt.Sprintf("(%s %s %s)", exprStr(x.L), x.Op, exprStr(x.R))
	case BinImm:
		op := x.Op
		if op == "mask" {
			return fmt.Sprintf("(%s & lowbits(%d))", exprStr(x.L), 32-x.Imm)
		}
		return fmt.Sprintf("(%s %s %d)", exprStr(x.L), op, x.Imm)
	}
	return fmt.Sprintf("/*%T*/", e)
}

func condStr(c Cond) string {
	rhs := ""
	if c.R != nil {
		rhs = exprStr(c.R)
	} else {
		rhs = fmt.Sprintf("%d", c.Imm)
	}
	u := ""
	if c.Unsigned {
		u = "u"
	}
	return fmt.Sprintf("%s %s%s %s /*cr%d*/", exprStr(c.L), c.Rel, u, rhs, c.CRF)
}

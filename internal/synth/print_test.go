package synth

import (
	"strings"
	"testing"
)

func TestPrintCoversAllConstructs(t *testing.T) {
	m := &Module{
		Name: "printed",
		Globals: []*Global{
			{Name: "g00", Len: 1},
			{Name: "tab", Len: 4, Elem: 1, Init: []int32{1, 2, 3, 4}},
		},
		Funcs: []*FuncDecl{
			{
				Name: "result", NParams: 1, NLocals: 3,
				Body: []Stmt{
					Assign{Dst: LGlobal{"g00"}, Src: BinOp{Op: "+", L: Local{0}, R: Const{2}}},
					Assign{Dst: LArray{Name: "tab", Idx: Local{1}}, Src: BinImm{Op: "<<", L: Local{1}, Imm: 1}},
					AssignCall{Dst: LLocal{2}, Callee: "lc_abs", Libc: true, Args: []Expr{UnOp{Op: "neg", X: Local{1}}}},
					If{
						Cond: Cond{Rel: "<", L: Local{1}, Imm: 5, CRF: 1},
						Then: []Stmt{PutInt{Val: GlobalRef{"g00"}}},
						Else: []Stmt{Assign{Dst: LLocal{1}, Src: Const{0}}},
					},
					Loop{Var: 1, From: 0, To: 4, Step: 1, Body: []Stmt{
						Switch{Var: 1,
							Cases:   [][]Stmt{{Return{Val: Const{1}}}, {Return{Val: Const{2}}}},
							Default: []Stmt{Assign{Dst: LLocal{2}, Src: BinImm{Op: "mask", L: Local{2}, Imm: 24}}},
						},
					}},
					Return{Val: ArrayRef{Name: "tab", Idx: Local{1}}},
				},
			},
			{Name: "leafy", NParams: 1, NLocals: 1, Leaf: true,
				Body: []Stmt{Return{Val: UnOp{Op: "not", X: Local{0}}}}},
		},
	}
	out := Print(m)
	for _, want := range []string{
		"module printed",
		"u32 g00;",
		"u8 tab[4] = {1, 2, 3, 4};",
		"func result(l0) {",
		"var l1, l2",
		"g00 = (l0 + 2)",
		"tab[l1] = (l1 << 1)",
		"l2 = lc_abs(-(l1))",
		"if l1 < 5 /*cr1*/ {",
		"} else {",
		"putint(g00)",
		"for l1 = 0; l1 < 4; l1 += 1 {",
		"switch l1 {",
		"case 0:",
		"default:",
		"& lowbits(8)",
		"return tab[l1]",
		"// leaf",
		"return ~(l0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed module missing %q\n%s", want, out)
		}
	}
	// The generated corpus must print without unknown-node placeholders.
	p, _ := ProfileFor("li")
	mod, err := GenerateModule(p)
	if err != nil {
		t.Fatal(err)
	}
	gen := Print(mod)
	if strings.Contains(gen, "/*unknown") || strings.Contains(gen, "/*synth.") {
		t.Error("generated module printed with unknown nodes")
	}
	if len(gen) < 1000 {
		t.Errorf("generated module print suspiciously short: %d bytes", len(gen))
	}
}

package synth

import (
	"fmt"
	"sort"

	"repro/internal/program"
)

// BenchmarkNames lists the SPEC CINT95 stand-ins in the paper's order.
func BenchmarkNames() []string {
	return []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}
}

// profiles defines the eight benchmark stand-ins. Sizes are scaled down
// from SPEC CINT95 static binaries (statically linked, GCC -O2) but keep
// the paper's relative ordering: gcc ≫ vortex > go ≈ perl > ijpeg >
// m88ksim > li > compress. Statement mixes caricature each program's
// character (compress: loops over buffers; gcc/perl: big switch-heavy
// functions; li/vortex: call-heavy; ijpeg: array arithmetic; go: branchy
// evaluation; m88ksim: decode switches).
var profiles = map[string]Profile{
	"compress": {
		Name: "compress", Seed: 101, TargetWords: 3600,
		StmtsMin: 3, StmtsMax: 7, ExprDepth: 3, LeafFrac: 0.30,
		WAssign: 30, WIf: 18, WLoop: 22, WSwitch: 3, WCall: 12, WArray: 15,
		MaxLocals: 6, NScalars: 10, NArrays: 6, ArrayLenPow: 8,
		ImmRange: 256, CallWindow: 10, LibcFrac: 0.35,
		SwitchMin: 3, SwitchMax: 5, MainRoots: 4, MainDepth: 3,
		MegaFuncs: 1, MegaSpan: [2]int{50, 130},
	},
	"gcc": {
		Name: "gcc", Seed: 102, TargetWords: 42000,
		StmtsMin: 4, StmtsMax: 10, ExprDepth: 3, LeafFrac: 0.18,
		WAssign: 26, WIf: 22, WLoop: 8, WSwitch: 10, WCall: 24, WArray: 10,
		MaxLocals: 8, NScalars: 24, NArrays: 10, ArrayLenPow: 7,
		ImmRange: 512, CallWindow: 40, LibcFrac: 0.20,
		SwitchMin: 4, SwitchMax: 9, MainRoots: 6, MainDepth: 3,
		MegaFuncs: 2, MegaSpan: [2]int{150, 560},
	},
	"go": {
		Name: "go", Seed: 103, TargetWords: 16000,
		StmtsMin: 2, StmtsMax: 6, ExprDepth: 3, LeafFrac: 0.22,
		WAssign: 28, WIf: 30, WLoop: 12, WSwitch: 4, WCall: 14, WArray: 12,
		MaxLocals: 7, NScalars: 16, NArrays: 8, ArrayLenPow: 9,
		ImmRange: 384, CallWindow: 24, LibcFrac: 0.25,
		SwitchMin: 3, SwitchMax: 6, MainRoots: 5, MainDepth: 3,
		MegaFuncs: 2, MegaSpan: [2]int{120, 420},
	},
	"ijpeg": {
		Name: "ijpeg", Seed: 104, TargetWords: 11000,
		StmtsMin: 3, StmtsMax: 8, ExprDepth: 4, LeafFrac: 0.25,
		WAssign: 30, WIf: 12, WLoop: 22, WSwitch: 2, WCall: 12, WArray: 22,
		MaxLocals: 7, NScalars: 12, NArrays: 12, ArrayLenPow: 8,
		ImmRange: 256, CallWindow: 16, LibcFrac: 0.25,
		SwitchMin: 3, SwitchMax: 5, MainRoots: 5, MainDepth: 3,
		MegaFuncs: 1, MegaSpan: [2]int{120, 300},
	},
	"li": {
		Name: "li", Seed: 105, TargetWords: 6000,
		StmtsMin: 2, StmtsMax: 6, ExprDepth: 2, LeafFrac: 0.26,
		WAssign: 26, WIf: 20, WLoop: 8, WSwitch: 7, WCall: 28, WArray: 11,
		MaxLocals: 6, NScalars: 12, NArrays: 5, ArrayLenPow: 7,
		ImmRange: 128, CallWindow: 14, LibcFrac: 0.30,
		SwitchMin: 3, SwitchMax: 6, MainRoots: 5, MainDepth: 3,
		MegaFuncs: 1, MegaSpan: [2]int{100, 260},
	},
	"m88ksim": {
		Name: "m88ksim", Seed: 106, TargetWords: 9000,
		StmtsMin: 3, StmtsMax: 8, ExprDepth: 3, LeafFrac: 0.22,
		WAssign: 28, WIf: 18, WLoop: 10, WSwitch: 12, WCall: 16, WArray: 16,
		MaxLocals: 7, NScalars: 16, NArrays: 8, ArrayLenPow: 8,
		ImmRange: 256, CallWindow: 16, LibcFrac: 0.25,
		SwitchMin: 4, SwitchMax: 8, MainRoots: 5, MainDepth: 3,
		MegaFuncs: 1, MegaSpan: [2]int{150, 400},
	},
	"perl": {
		Name: "perl", Seed: 107, TargetWords: 15000,
		StmtsMin: 4, StmtsMax: 10, ExprDepth: 3, LeafFrac: 0.18,
		WAssign: 26, WIf: 20, WLoop: 8, WSwitch: 11, WCall: 22, WArray: 13,
		MaxLocals: 8, NScalars: 18, NArrays: 8, ArrayLenPow: 8,
		ImmRange: 384, CallWindow: 24, LibcFrac: 0.22,
		SwitchMin: 4, SwitchMax: 8, MainRoots: 5, MainDepth: 3,
		MegaFuncs: 2, MegaSpan: [2]int{150, 480},
	},
	"vortex": {
		Name: "vortex", Seed: 108, TargetWords: 19000,
		StmtsMin: 3, StmtsMax: 8, ExprDepth: 2, LeafFrac: 0.20,
		WAssign: 32, WIf: 18, WLoop: 8, WSwitch: 4, WCall: 26, WArray: 12,
		MaxLocals: 8, NScalars: 20, NArrays: 10, ArrayLenPow: 8,
		ImmRange: 512, CallWindow: 28, LibcFrac: 0.22,
		SwitchMin: 3, SwitchMax: 6, MainRoots: 6, MainDepth: 3,
		MegaFuncs: 2, MegaSpan: [2]int{120, 400},
	},
}

// ProfileFor returns the named benchmark profile.
func ProfileFor(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("synth: unknown benchmark %q (have %v)", name, BenchmarkNames())
	}
	return p, nil
}

// Generate builds the named benchmark: generated functions, then libc,
// then the driver, linked into an executable program. Generation is
// deterministic — the same name always yields the identical binary.
func Generate(name string) (*program.Program, error) {
	return GenerateScaled(name, 1)
}

// GenerateScaled builds the named benchmark with its size target
// multiplied by scale (e.g. 8 brings gcc near the real statically-linked
// SPEC binary). Mega-function counts scale too, coarsely.
func GenerateScaled(name string, scale float64) (*program.Program, error) {
	p, err := ProfileFor(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("synth: scale %v must be positive", scale)
	}
	if scale != 1 {
		p.TargetWords = int(float64(p.TargetWords) * scale)
		if p.TargetWords < 500 {
			p.TargetWords = 500
		}
		if scale >= 2 {
			p.MegaFuncs *= int(scale)
		} else if scale < 1 && p.MegaFuncs > 1 {
			p.MegaFuncs = 1
		}
	}
	return GenerateProfile(p)
}

// GenerateProfile builds a program from an arbitrary profile (used by
// tests and examples that need scaled-down workloads).
//
// Because words-per-function varies strongly with the statement mix, the
// generator calibrates in two passes: a pilot module measures the actual
// expansion rate, then the module is regenerated (same seed, rescaled
// function count) so the final text size lands near the profile target.
func GenerateProfile(p Profile) (*program.Program, error) {
	pilot, err := GenerateModule(p)
	if err != nil {
		return nil, err
	}
	pilotCG := NewCodegen(p.Name + ".pilot")
	pilotCG.StandardizeSaves = p.StandardizeSaves
	pilotCG.ScrambleAlloc = p.ScrambleAlloc
	if err := pilotCG.CompileModule(pilot); err != nil {
		return nil, err
	}
	actual := pilotCG.Builder().Words()
	nfuncs := len(pilot.Funcs)
	if actual > 0 {
		nfuncs = int(float64(len(pilot.Funcs)) * float64(p.TargetWords) / float64(actual))
	}
	mod, err := GenerateModuleN(p, nfuncs)
	if err != nil {
		return nil, err
	}
	cg := NewCodegen(p.Name)
	cg.StandardizeSaves = p.StandardizeSaves
	cg.ScrambleAlloc = p.ScrambleAlloc
	if err := cg.CompileModule(mod); err != nil {
		return nil, err
	}
	EmitLibc(cg.Builder())
	roots := make([]string, 0, p.MainRoots)
	for i := 0; i < p.MainRoots && i < len(mod.Funcs); i++ {
		roots = append(roots, mod.Funcs[i].Name)
	}
	cg.EmitMain(roots, p.MainDepth)
	return cg.Link()
}

// GenerateAll builds the whole corpus, sorted by name.
func GenerateAll() (map[string]*program.Program, error) {
	out := make(map[string]*program.Program, len(profiles))
	names := BenchmarkNames()
	sort.Strings(names)
	for _, n := range names {
		p, err := Generate(n)
		if err != nil {
			return nil, fmt.Errorf("synth: generating %s: %w", n, err)
		}
		out[n] = p
	}
	return out, nil
}

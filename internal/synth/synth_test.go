package synth

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/program"
)

func TestGenerateAll(t *testing.T) {
	all, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(BenchmarkNames()) {
		t.Fatalf("%d programs", len(all))
	}
	for _, name := range BenchmarkNames() {
		if all[name] == nil {
			t.Errorf("%s missing", name)
		}
	}
}

func TestGenerateScaledBounds(t *testing.T) {
	if _, err := GenerateScaled("li", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := GenerateScaled("li", -1); err == nil {
		t.Error("negative scale accepted")
	}
	small, err := GenerateScaled("li", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GenerateScaled("li", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Text) >= len(big.Text) {
		t.Fatalf("scaling inverted: %d vs %d", len(small.Text), len(big.Text))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Text) != len(b.Text) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Text), len(b.Text))
	}
	for i := range a.Text {
		if a.Text[i] != b.Text[i] {
			t.Fatalf("word %d differs", i)
		}
	}
}

func TestGeneratedSizes(t *testing.T) {
	// Relative ordering must match the paper: gcc is by far the largest,
	// compress the smallest. Absolute sizes must be within a factor of two
	// of the profile target (the calibration constant drifts as templates
	// evolve; this is the tripwire).
	sizes := map[string]int{}
	for _, name := range BenchmarkNames() {
		p, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sizes[name] = len(p.Text)
		prof, _ := ProfileFor(name)
		if len(p.Text) < prof.TargetWords/2 || len(p.Text) > prof.TargetWords*2 {
			t.Errorf("%s: %d words, target %d — recalibrate estWordsPerFunc",
				name, len(p.Text), prof.TargetWords)
		}
	}
	if !(sizes["gcc"] > sizes["vortex"] && sizes["vortex"] > sizes["ijpeg"] &&
		sizes["ijpeg"] > sizes["m88ksim"] && sizes["m88ksim"] > sizes["li"] &&
		sizes["li"] > sizes["compress"]) {
		t.Errorf("size ordering broken: %v", sizes)
	}
}

func TestGeneratedProgramsExecute(t *testing.T) {
	// Every benchmark must run to completion deterministically. Bigger
	// benchmarks get a generous budget; the depth guard bounds the work.
	for _, name := range BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := machine.NewForProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			status, err := cpu.Run(200_000_000)
			if err != nil {
				t.Fatalf("execution: %v", err)
			}
			if status != 0 {
				t.Fatalf("exit status %d", status)
			}
			out := string(cpu.Output())
			if len(out) == 0 || out[len(out)-1] != '\n' {
				t.Fatalf("malformed output %q", out)
			}
			t.Logf("%s: %d words, %d steps, checksum %s",
				name, len(p.Text), cpu.Stats.Steps, out[:len(out)-1])
		})
	}
}

func TestLibcFunctionsBehave(t *testing.T) {
	// Call selected libc functions directly with a tiny driver and check
	// results against Go reference implementations.
	cases := []struct {
		fn   string
		args []int32
		want int32
	}{
		{"lc_abs", []int32{-7}, 7},
		{"lc_abs", []int32{7}, 7},
		{"lc_sign", []int32{-3}, -1},
		{"lc_sign", []int32{0}, 0},
		{"lc_sign", []int32{9}, 1},
		{"lc_min", []int32{4, 9}, 4},
		{"lc_max", []int32{4, 9}, 9},
		{"lc_avg", []int32{4, 10}, 7},
		{"lc_clamp8", []int32{300}, 255},
		{"lc_clamp8", []int32{-4}, 0},
		{"lc_clamp8", []int32{77}, 77},
		{"lc_parity", []int32{0b1011}, 1},
		{"lc_popcount8", []int32{0xFF}, 8},
		{"lc_popcount8", []int32{0xA5}, 4},
		{"lc_bitrev8", []int32{0x01}, 0x80},
		{"lc_bitrev8", []int32{0xA5}, 0xA5},
		{"lc_tolower", []int32{'A'}, 'a'},
		{"lc_tolower", []int32{'z'}, 'z'},
		{"lc_toupper", []int32{'b'}, 'B'},
		{"lc_isdigit", []int32{'5'}, 1},
		{"lc_isdigit", []int32{'x'}, 0},
		{"lc_isalpha", []int32{'Q'}, 1},
		{"lc_isalpha", []int32{'9'}, 0},
		{"lc_mod", []int32{17, 5}, 2},
		{"lc_mod", []int32{17, 0}, 17},
		{"lc_gcd16", []int32{12, 18}, 6},
		{"lc_gcd16", []int32{-12, 18}, 6},
		{"lc_sq", []int32{9}, 81},
		{"lc_dist", []int32{3, 11}, 8},
		{"lc_sext8", []int32{0x80}, -128},
		{"lc_swaph", []int32{0x12345678}, 0x56781234},
	}
	for _, tc := range cases {
		b := program.NewBuilder("t")
		main := b.Func("main")
		for i, a := range tc.args {
			if a >= -0x8000 && a < 0x8000 {
				main.Emit(ppc.Li(uint8(3+i), a))
			} else {
				main.Emit(ppc.Lis(uint8(3+i), int32(int16(uint16(uint32(a)>>16)))))
				main.Emit(ppc.Ori(uint8(3+i), uint8(3+i), int32(uint32(a)&0xFFFF)))
			}
		}
		main.Call(tc.fn)
		main.Emit(ppc.Li(0, machine.SysExit))
		main.Emit(ppc.Sc())
		EmitLibc(b)
		b.SetEntry("main")
		p, err := b.Link()
		if err != nil {
			t.Fatalf("%s: link: %v", tc.fn, err)
		}
		cpu, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		status, err := cpu.Run(100000)
		if err != nil {
			t.Fatalf("%s%v: %v", tc.fn, tc.args, err)
		}
		if status != tc.want {
			t.Errorf("%s%v = %d, want %d", tc.fn, tc.args, status, tc.want)
		}
	}
}

func TestModuleStructure(t *testing.T) {
	p, err := ProfileFor("li")
	if err != nil {
		t.Fatal(err)
	}
	m, err := GenerateModule(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) < 3 {
		t.Fatalf("only %d functions", len(m.Funcs))
	}
	for i, f := range m.Funcs {
		if f.NParams > f.NLocals {
			t.Errorf("%s: params %d > locals %d", f.Name, f.NParams, f.NLocals)
		}
		if f.Leaf {
			if f.NLocals > 2 {
				t.Errorf("leaf %s has %d locals", f.Name, f.NLocals)
			}
			assertNoCalls(t, f.Name, f.Body)
		}
		if f.Name != funcName(i) {
			t.Errorf("function %d named %s", i, f.Name)
		}
	}
	for _, g := range m.Globals {
		if g.Len&(g.Len-1) != 0 {
			t.Errorf("global %s length %d not a power of two", g.Name, g.Len)
		}
	}
}

func assertNoCalls(t *testing.T, fn string, body []Stmt) {
	t.Helper()
	for _, s := range body {
		switch st := s.(type) {
		case AssignCall:
			t.Errorf("leaf %s contains a call", fn)
		case If:
			assertNoCalls(t, fn, st.Then)
			assertNoCalls(t, fn, st.Else)
		case Loop:
			assertNoCalls(t, fn, st.Body)
		case Switch:
			for _, c := range st.Cases {
				assertNoCalls(t, fn, c)
			}
			assertNoCalls(t, fn, st.Default)
		}
	}
}

// TestCallGraphIsDAG verifies termination structurally: generated function
// i only calls generated functions j > i (or libc).
func TestCallGraphIsDAG(t *testing.T) {
	p, _ := ProfileFor("go")
	m, err := GenerateModule(p)
	if err != nil {
		t.Fatal(err)
	}
	libc := map[string]bool{}
	for _, n := range LibcNames() {
		libc[n] = true
	}
	var check func(fidx int, body []Stmt)
	check = func(fidx int, body []Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case AssignCall:
				if st.Libc {
					if !libc[st.Callee] {
						t.Errorf("f%03d calls unknown libc %q", fidx, st.Callee)
					}
					continue
				}
				j, err := strconv.Atoi(strings.TrimPrefix(st.Callee, "f"))
				if err != nil {
					t.Errorf("unparseable callee %q", st.Callee)
					continue
				}
				if j <= fidx {
					t.Errorf("f%03d calls f%03d: not a DAG edge", fidx, j)
				}
			case If:
				check(fidx, st.Then)
				check(fidx, st.Else)
			case Loop:
				check(fidx, st.Body)
			case Switch:
				for _, c := range st.Cases {
					check(fidx, c)
				}
				check(fidx, st.Default)
			}
		}
	}
	for i, f := range m.Funcs {
		check(i, f.Body)
	}
}

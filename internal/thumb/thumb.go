// Package thumb models a Thumb/MIPS16-style re-encoded instruction set
// (§2.2): a fixed 16-bit subset of the 32-bit ISA restricted to eight
// registers and short immediates, with mode-switch overhead at the
// boundaries between 16-bit and 32-bit regions.
//
// This is a size model, not an executable re-encoder: the paper itself
// only compares against Thumb's and MIPS16's published size reductions
// (~30% and ~40%). The model walks the real instruction stream and
// classifies each instruction as 16-bit-encodable under Thumb-like rules;
// it is *optimistic* for Thumb because a real compiler constrained to 8
// registers would need extra moves and spills the model does not charge.
package thumb

import (
	"repro/internal/ppc"
	"repro/internal/program"
)

// Result summarizes the re-encoding of one program.
type Result struct {
	Insns      int
	Narrow     int // instructions encodable in 16 bits
	Wide       int // instructions left at 32 bits
	SwitchRuns int // contiguous 32-bit regions (each charged a mode switch)
	Bytes      int // total re-encoded size
	OrigBytes  int
}

// Ratio is re-encoded/original size.
func (r Result) Ratio() float64 {
	if r.OrigBytes == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.OrigBytes)
}

// switchOverheadBytes models the enter/exit mode-toggling branches around
// each 32-bit region (Thumb's BX pairs).
const switchOverheadBytes = 4

// Analyze re-encodes the program under the model.
func Analyze(p *program.Program) Result {
	res := Result{Insns: len(p.Text), OrigBytes: p.SizeBytes()}
	inWide := false
	for _, w := range p.Text {
		if Narrowable(w) {
			res.Narrow++
			res.Bytes += 2
			inWide = false
			continue
		}
		res.Wide++
		res.Bytes += 4
		if !inWide {
			res.SwitchRuns++
			res.Bytes += switchOverheadBytes
			inWide = true
		}
	}
	return res
}

// low reports whether a register is one of the eight Thumb-visible ones.
func low(r uint8) bool { return r < 8 }

// Narrowable reports whether the instruction fits a Thumb-style 16-bit
// encoding: low registers, destructive two-address arithmetic, short
// unsigned immediates, short scaled load/store offsets, near branches.
func Narrowable(w uint32) bool {
	i := ppc.Decode(w)
	switch i.Op {
	case ppc.OpAddi:
		// add/sub small immediate, destructive, or li with a byte; stack
		// adjustment maps to Thumb's ADD SP, #imm.
		if i.RA == 0 {
			return low(i.RT) && i.Imm >= 0 && i.Imm < 256
		}
		if i.RT == 1 && i.RA == 1 {
			return i.Imm%4 == 0 && i.Imm > -512 && i.Imm < 512
		}
		return low(i.RT) && low(i.RA) && i.RT == i.RA && i.Imm > -256 && i.Imm < 256
	case ppc.OpCmpwi:
		return i.CRF == 0 && low(i.RA) && i.Imm >= 0 && i.Imm < 256
	case ppc.OpAdd, ppc.OpSubf, ppc.OpMullw:
		// Destructive 2-address form on low registers.
		return low(i.RT) && low(i.RA) && low(i.RB) && (i.RT == i.RA || i.RT == i.RB)
	case ppc.OpOr:
		if i.RT == i.RB {
			return true // mr: Thumb MOV works across high registers too
		}
		return low(i.RT) && low(i.RA) && low(i.RB) && (i.RA == i.RT || i.RA == i.RB)
	case ppc.OpAnd, ppc.OpXor, ppc.OpSlw, ppc.OpSrw, ppc.OpSraw:
		return low(i.RT) && low(i.RA) && low(i.RB) && (i.RA == i.RT || i.RA == i.RB)
	case ppc.OpNeg, ppc.OpExtsb, ppc.OpExtsh:
		return low(i.RT) && low(i.RA)
	case ppc.OpSrawi:
		return low(i.RT) && low(i.RA)
	case ppc.OpRlwinm:
		// Thumb has immediate shifts; accept the shift simplified forms.
		simple := (i.MB == 0 && i.ME == 31-i.SH) || // slwi
			(i.ME == 31 && i.SH == 32-i.MB) || // srwi
			(i.SH == 0 && i.ME == 31) // clrlwi (masks)
		return simple && low(i.RT) && low(i.RA)
	case ppc.OpLwz, ppc.OpStw:
		if i.RA == 1 {
			// Thumb LDR/STR Rd, [SP, #imm8<<2].
			return low(i.RT) && i.Imm >= 0 && i.Imm < 1024 && i.Imm%4 == 0
		}
		return low(i.RT) && low(i.RA) && i.Imm >= 0 && i.Imm < 128 && i.Imm%4 == 0
	case ppc.OpLbz, ppc.OpStb:
		return low(i.RT) && low(i.RA) && i.Imm >= 0 && i.Imm < 32
	case ppc.OpLhz, ppc.OpSth:
		return low(i.RT) && low(i.RA) && i.Imm >= 0 && i.Imm < 64 && i.Imm%2 == 0
	case ppc.OpLwzx, ppc.OpStwx, ppc.OpLbzx, ppc.OpStbx, ppc.OpLhzx, ppc.OpSthx:
		// Thumb register-offset loads/stores need all-low registers.
		return low(i.RT) && low(i.RA) && low(i.RB)
	case ppc.OpB:
		if i.LK {
			// bl is a 32-bit two-halfword pair in Thumb: count as wide
			// (4 bytes) but without leaving 16-bit mode.
			return false
		}
		return i.Imm > -2048 && i.Imm < 2048
	case ppc.OpBc:
		return i.Imm > -256 && i.Imm < 256 && i.BO != ppc.BoDnz
	case ppc.OpBclr:
		return i.BO == ppc.BoAlways && !i.LK // bx lr
	case ppc.OpBcctr:
		return i.BO == ppc.BoAlways // bx/blx reg
	case ppc.OpSc:
		return true // swi imm8
	case ppc.OpOri:
		// nop and same-register no-op moves.
		return i.RT == i.RA && i.Imm == 0 && low(i.RA)
	}
	return false
}

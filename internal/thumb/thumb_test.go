package thumb

import (
	"testing"

	"repro/internal/ppc"
	"repro/internal/synth"
)

func TestNarrowableClassification(t *testing.T) {
	cases := []struct {
		word uint32
		want bool
		why  string
	}{
		{ppc.Li(3, 100), true, "li low reg small imm"},
		{ppc.Li(9, 100), false, "li high reg"},
		{ppc.Li(3, 300), false, "imm too large"},
		{ppc.Li(3, -1), false, "negative mov imm"},
		{ppc.Addi(3, 3, 5), true, "destructive addi"},
		{ppc.Addi(3, 4, 5), false, "non-destructive addi"},
		{ppc.Add(3, 3, 4), true, "destructive add"},
		{ppc.Add(3, 4, 5), false, "3-address add"},
		{ppc.Add(9, 9, 4), false, "high reg add"},
		{ppc.And(3, 3, 4), true, "destructive and"},
		{ppc.Cmpwi(0, 3, 8), true, "cmp low"},
		{ppc.Cmpwi(1, 3, 8), false, "cmp cr1"},
		{ppc.Lwz(3, 8, 4), true, "short word load"},
		{ppc.Lwz(3, 6, 4), false, "unaligned word offset"},
		{ppc.Lwz(3, 200, 4), false, "long offset"},
		{ppc.Lwz(3, 8, 28), false, "high base"},
		{ppc.Lbz(3, 10, 4), true, "short byte load"},
		{ppc.B(100), true, "near b"},
		{ppc.B(4000), false, "far b"},
		{ppc.Bl(100), false, "bl is a 32-bit pair"},
		{ppc.Beq(0, 60), true, "near bc"},
		{ppc.Beq(0, 4000), false, "far bc"},
		{ppc.Bdnz(-8), false, "no ctr loop in thumb"},
		{ppc.Blr(), true, "bx lr"},
		{ppc.Bctr(), true, "bx reg"},
		{ppc.Sc(), true, "swi"},
		{ppc.Nop(), true, "nop"},
		{ppc.Mflr(0), false, "spr move"},
		{ppc.Stmw(29, 52, 1), false, "multi-store"},
		{ppc.Slwi(3, 3, 2), true, "immediate shift"},
		{ppc.Srawi(3, 3, 4), true, "asr imm"},
	}
	for _, c := range cases {
		if got := Narrowable(c.word); got != c.want {
			t.Errorf("%s (%s): got %v, want %v", ppc.Disassemble(c.word), c.why, got, c.want)
		}
	}
}

func TestAnalyzeAccounting(t *testing.T) {
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(p)
	if r.Narrow+r.Wide != r.Insns {
		t.Fatalf("classification does not partition: %d+%d != %d", r.Narrow, r.Wide, r.Insns)
	}
	wantBytes := 2*r.Narrow + 4*r.Wide + switchOverheadBytes*r.SwitchRuns
	if r.Bytes != wantBytes {
		t.Fatalf("bytes %d, want %d", r.Bytes, wantBytes)
	}
	if r.SwitchRuns == 0 || r.SwitchRuns > r.Wide {
		t.Fatalf("switch runs %d implausible (wide %d)", r.SwitchRuns, r.Wide)
	}
}

func TestThumbRatioBand(t *testing.T) {
	// Paper: Thumb ≈30% smaller, MIPS16 ≈40% smaller. The model should
	// land in the same neighborhood — meaningfully below 1.0 and above
	// the dictionary schemes' 0.35–0.45.
	for _, name := range synth.BenchmarkNames() {
		p, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		r := Analyze(p)
		if r.Ratio() < 0.5 || r.Ratio() > 1.0 {
			t.Errorf("%s: thumb ratio %.3f outside the plausible band", name, r.Ratio())
		}
	}
}

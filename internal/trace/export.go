package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format (the subset
// chrome://tracing and Perfetto consume): complete events ("X") carry a
// microsecond timestamp and duration; metadata events ("M") name the
// tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the collected spans as Chrome trace-event JSON.
// Each root span and its descendants form one track (tid = root span ID),
// so concurrent experiments render as parallel lanes; a metadata event
// names every track after its root span. Nil-safe: a nil tracer writes an
// empty, still-loadable document.
func (t *Tracer) WriteChrome(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	spans := t.Spans()

	// Track assignment: every span inherits the track of its root ancestor.
	track := make(map[int64]int64, len(spans))
	for _, s := range spans { // creation order ⇒ parents precede children
		if s.Parent == 0 {
			track[s.ID] = s.ID
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: s.ID,
				Args: map[string]string{"name": s.Name},
			})
		} else {
			track[s.ID] = track[s.Parent]
		}
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "codedensity",
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  track[s.ID],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTree renders the spans as an indented tree, children ordered by
// start time — the quick-look companion to the Chrome export. Nil-safe.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.Spans()
	children := make(map[int64][]SpanInfo, len(spans))
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	}
	var dump func(parent int64, depth int) error
	dump = func(parent int64, depth int) error {
		for _, s := range children[parent] {
			for i := 0; i < depth; i++ {
				if _, err := io.WriteString(w, "  "); err != nil {
					return err
				}
			}
			line := fmt.Sprintf("%s %s", s.Name, s.Dur.Round(time.Microsecond))
			if !s.Ended {
				line += " (running)"
			}
			for _, a := range s.Attrs {
				line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
			}
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
			if err := dump(s.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return dump(0, 0)
}

// Package trace provides lightweight span tracing for the compression and
// simulation pipeline: a concurrency-safe collector of named spans (ID,
// parent, attributes, wall-clock interval) with a Chrome trace-event JSON
// exporter (loadable in chrome://tracing and Perfetto) and a
// human-readable tree dump.
//
// Like the stats recorder, every entry point is nil-safe: a nil *Tracer
// yields nil *Spans, and every method of a nil *Span is a no-op, so
// instrumented code never checks whether tracing is enabled.
package trace

import (
	"sync"
	"time"
)

// Tracer collects spans. The zero value is not usable; call New. A nil
// *Tracer is a valid sink that discards everything.
type Tracer struct {
	mu    sync.Mutex
	t0    time.Time
	next  int64
	spans []*Span
}

// New creates an empty tracer. Span timestamps are offsets from this
// moment.
func New() *Tracer { return &Tracer{t0: time.Now()} }

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. Spans are created by Tracer.Root and
// Span.Child and finished with End; attributes may be attached at any
// point in between. A span is owned by the goroutine that created it —
// concurrent children are fine (each goroutine gets its own span), but a
// single span must not be mutated from two goroutines.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64 // 0 = root

	name  string
	start time.Duration // offset from the tracer epoch

	mu    sync.Mutex // guards the mutable tail against concurrent export
	attrs []Attr
	dur   time.Duration
	ended bool
}

// start allocates and registers a span.
func (t *Tracer) start(parent int64, name string) *Span {
	s := &Span{tr: t, parent: parent, name: name, start: time.Since(t.t0)}
	t.mu.Lock()
	t.next++
	s.id = t.next
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Root opens a top-level span. Nil-safe.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(0, name)
}

// Len reports the number of spans collected so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Child opens a span nested under s. Nil-safe: a nil receiver yields nil,
// so an untraced pipeline builds no spans at all.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.id, name)
}

// Set attaches a string attribute and returns s for chaining. Nil-safe.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Set(key, itoa(v))
}

// End closes the span, fixing its duration. Nil-safe; ending twice keeps
// the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.tr.t0) - s.start
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = d
	}
	s.mu.Unlock()
}

// SpanInfo is the exported, immutable view of one span.
type SpanInfo struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Ended  bool          `json:"ended"`
}

// Spans snapshots every collected span in creation order. Unended spans
// report the elapsed time so far. Safe to call while spans are still
// being created and mutated.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	out := make([]SpanInfo, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		info := SpanInfo{
			ID: s.id, Parent: s.parent, Name: s.name,
			Start: s.start, Dur: s.dur, Ended: s.ended,
			Attrs: append([]Attr(nil), s.attrs...),
		}
		s.mu.Unlock()
		if !info.Ended {
			info.Dur = now - info.Start
		}
		out[i] = info
	}
	return out
}

// itoa is strconv.FormatInt(v, 10) without pulling strconv into the hot
// path's inlining budget; attribute writes are rare.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [20]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

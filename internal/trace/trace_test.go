package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Root("r")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every span method must be a no-op on nil.
	sp.Set("k", "v").SetInt("n", 1)
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span returned a child")
	}
	sp.End()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer collected spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanHierarchyAndAttrs(t *testing.T) {
	tr := New()
	root := tr.Root("experiment").Set("id", "fig5").SetInt("worker", 2)
	child := root.Child("compress")
	grand := child.Child("dict.select")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
		if !s.Ended {
			t.Errorf("%s not ended", s.Name)
		}
	}
	if byName["experiment"].Parent != 0 {
		t.Error("root has a parent")
	}
	if byName["compress"].Parent != byName["experiment"].ID {
		t.Error("child not parented to root")
	}
	if byName["dict.select"].Parent != byName["compress"].ID {
		t.Error("grandchild not parented to child")
	}
	attrs := byName["experiment"].Attrs
	if len(attrs) != 2 || attrs[0] != (Attr{"id", "fig5"}) || attrs[1] != (Attr{"worker", "2"}) {
		t.Errorf("attrs = %+v", attrs)
	}
}

// chromeDoc mirrors the subset of the trace-event format the exporter
// emits; unmarshalling the output into it is the round-trip gate that the
// file chrome://tracing / Perfetto will accept.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   *float64          `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  *int64            `json:"pid"`
		TID  *int64            `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeRoundTrip(t *testing.T) {
	tr := New()
	a := tr.Root("experiment:fig5").Set("worker", "0")
	a.Child("corpus.compress").Set("bench", "gcc").End()
	a.End()
	b := tr.Root("experiment:fig6")
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 thread_name metadata events + 3 span events.
	var meta, complete int
	tracks := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.TS == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tracks[*ev.TID] = true
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("events: %d metadata + %d complete, want 2 + 3", meta, complete)
	}
	// The two roots must land on distinct tracks; the child shares its
	// root's track.
	if len(tracks) != 2 {
		t.Fatalf("tracks = %v, want 2", tracks)
	}
}

func TestWriteTree(t *testing.T) {
	tr := New()
	root := tr.Root("experiment").Set("id", "fig5")
	root.Child("corpus.compress").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("tree:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "experiment ") || !strings.Contains(lines[0], "id=fig5") {
		t.Errorf("root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  corpus.compress ") {
		t.Errorf("child line %q", lines[1])
	}
}

// TestConcurrentCollector exercises the collector from many goroutines —
// span creation, attribute writes, End, and mid-run exports — and is the
// tracer's -race gate.
func TestConcurrentCollector(t *testing.T) {
	tr := New()
	root := tr.Root("run")
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				sp := root.Child("work").SetInt("worker", int64(i))
				sp.Child("inner").End()
				sp.End()
				if j%10 == 0 {
					_ = tr.Spans()
					_ = tr.WriteChrome(&bytes.Buffer{})
					_ = tr.WriteTree(&bytes.Buffer{})
				}
			}
		}()
	}
	wg.Wait()
	root.End()
	if got, want := tr.Len(), 1+workers*iters*2; got != want {
		t.Fatalf("spans = %d, want %d", got, want)
	}
}

func TestWriteChromeEmptyTracer(t *testing.T) {
	// A live tracer that collected no spans must still write a loadable
	// document: an empty traceEvents array, not null and not an error.
	tr := New()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Unit        string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents serialized as null; Chrome rejects that")
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("unexpected events: %s", buf.Bytes())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.Unit)
	}

	// WriteTree on the same empty tracer writes nothing but succeeds.
	buf.Reset()
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "" {
		t.Fatalf("WriteTree output %q", buf.String())
	}
}

// Package wire provides the big-endian serialization primitives shared by
// the objfile container and the codec payload encoders: sticky-error
// writers and readers over the scalar/string/word-slice vocabulary every
// on-disk structure is built from, with the size limits that guard against
// garbage files allocating absurd buffers.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Limits on variable-length fields.
const (
	// MaxStr bounds serialized strings (names, symbols).
	MaxStr = 1 << 12
	// MaxCount bounds element counts and byte-slice lengths.
	MaxCount = 1 << 26
)

// Writer serializes big-endian values with a sticky error: after the first
// failure every subsequent call is a no-op, so call sites stay linear and
// check Err once at the end.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps dst. Buffering is the caller's concern.
func NewWriter(dst io.Writer) *Writer { return &Writer{w: dst} }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Fail records an error from the caller's own validation.
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.bin(v) }

// U16 writes a big-endian uint16.
func (w *Writer) U16(v uint16) { w.bin(v) }

// U32 writes a big-endian uint32.
func (w *Writer) U32(v uint32) { w.bin(v) }

// U64 writes a big-endian uint64.
func (w *Writer) U64(v uint64) { w.bin(v) }

func (w *Writer) bin(v interface{}) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.BigEndian, v)
	}
}

// Bytes writes raw bytes with no length prefix.
func (w *Writer) Bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

// Blob writes a uint32 length prefix followed by the bytes.
func (w *Writer) Blob(b []byte) {
	if len(b) > MaxCount {
		w.Fail(fmt.Errorf("wire: blob too long (%d)", len(b)))
		return
	}
	w.U32(uint32(len(b)))
	w.Bytes(b)
}

// Str writes a uint16 length prefix followed by the string bytes.
func (w *Writer) Str(s string) {
	if len(s) > MaxStr {
		w.Fail(fmt.Errorf("wire: string too long (%d)", len(s)))
		return
	}
	w.U16(uint16(len(s)))
	w.Bytes([]byte(s))
}

// Words writes a uint32 count followed by each word.
func (w *Writer) Words(ws []uint32) {
	w.U32(uint32(len(ws)))
	for _, x := range ws {
		w.U32(x)
	}
}

// Reader deserializes big-endian values with a sticky error mirroring
// Writer: after the first failure every call returns zero values.
type Reader struct {
	r   io.Reader
	err error
}

// NewReader wraps src. Buffering is the caller's concern.
func NewReader(src io.Reader) *Reader { return &Reader{r: src} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail records an error from the caller's own validation.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U8 reads one byte.
func (r *Reader) U8() (v uint8) { r.bin(&v); return }

// U16 reads a big-endian uint16.
func (r *Reader) U16() (v uint16) { r.bin(&v); return }

// U32 reads a big-endian uint32.
func (r *Reader) U32() (v uint32) { r.bin(&v); return }

// U64 reads a big-endian uint64.
func (r *Reader) U64() (v uint64) { r.bin(&v); return }

func (r *Reader) bin(v interface{}) {
	if r.err == nil {
		r.err = binary.Read(r.r, binary.BigEndian, v)
	}
}

// Bytes reads exactly n raw bytes, rejecting implausible lengths.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > MaxCount {
		r.err = fmt.Errorf("wire: implausible length %d", n)
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}

// Blob reads a uint32 length prefix and that many bytes.
func (r *Reader) Blob() []byte { return r.Bytes(int(r.U32())) }

// Str reads a uint16 length prefix and that many string bytes.
func (r *Reader) Str() string { return string(r.Bytes(int(r.U16()))) }

// Words reads a uint32 count and that many words.
func (r *Reader) Words() []uint32 {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > MaxCount {
		r.err = fmt.Errorf("wire: implausible word count %d", n)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// Count validates an element count read by the caller against MaxCount.
func (r *Reader) Count(n int, what string) int {
	if r.err == nil && (n < 0 || n > MaxCount) {
		r.err = fmt.Errorf("wire: implausible %s count %d", what, n)
	}
	if r.err != nil {
		return 0
	}
	return n
}
